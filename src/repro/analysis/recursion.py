"""Mutual recursion and linearity (Definition 8 of the paper).

A rule ``B <- phi_1, ..., phi_n`` is *recursive* iff some premise's goal
predicate is mutually recursive with ``B``, and *linear* iff exactly one
premise is.  A set of rules is linear iff every recursive rule in it is
linear.

"Mutually recursive" is taken with respect to the whole rulebase: two
predicates are mutually recursive iff they lie in the same strongly
connected component of the dependency graph (positive, negative, and
hypothetical edges all count; addition atoms do not).  This captures
the paper's warning that linearity cannot be judged one rule at a time:
the ``n + 1`` rules ``A <- B, D_1, ..., D_n`` and ``D_i <- A[add:C_i]``
each look linear but jointly imply the non-linear rule (2), and indeed
here every ``D_i`` is mutually recursive with ``A``, so the first rule
has ``n`` recursive premises and is flagged non-linear.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.ast import Rule, Rulebase
from .depgraph import DependencyGraph

__all__ = [
    "mutual_recursion_classes",
    "recursive_premise_count",
    "is_recursive_rule",
    "is_linear_rule",
    "is_linear_ruleset",
    "nonlinear_rules",
]


def mutual_recursion_classes(rulebase: Rulebase) -> dict[str, frozenset[str]]:
    """Map each predicate to its mutual-recursion equivalence class."""
    graph = DependencyGraph.from_rulebase(rulebase)
    return {node: graph.component_of(node) for node in graph.nodes}


def recursive_premise_count(
    item: Rule, classes: Mapping[str, frozenset[str]]
) -> int:
    """Number of premises whose goal predicate is mutually recursive
    with the rule head."""
    head_class = classes.get(item.head.predicate, frozenset({item.head.predicate}))
    return sum(
        1 for _, predicate in item.body_predicates() if predicate in head_class
    )


def is_recursive_rule(item: Rule, classes: Mapping[str, frozenset[str]]) -> bool:
    """Definition 8: at least one mutually-recursive premise."""
    return recursive_premise_count(item, classes) >= 1


def is_linear_rule(item: Rule, classes: Mapping[str, frozenset[str]]) -> bool:
    """Definition 8: non-recursive rules are vacuously linear;
    recursive rules must have exactly one recursive premise."""
    return recursive_premise_count(item, classes) <= 1


def is_linear_ruleset(
    rules: Iterable[Rule], classes: Mapping[str, frozenset[str]]
) -> bool:
    """Definition 8 for sets: every recursive rule is linear."""
    return all(is_linear_rule(item, classes) for item in rules)


def nonlinear_rules(rulebase: Rulebase) -> list[Rule]:
    """The rules of a rulebase violating linearity, for diagnostics."""
    classes = mutual_recursion_classes(rulebase)
    return [item for item in rulebase if not is_linear_rule(item, classes)]
