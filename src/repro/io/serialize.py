"""JSON serialization of rulebases and databases.

The dict layout is stable and version-tagged so saved artifacts keep
loading across library versions.  Terms are tagged dictionaries
(``{"var": "X"}`` / ``{"const": "a"}``); integers survive the round
trip because JSON distinguishes them from strings.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.errors import ValidationError
from ..core.terms import Atom, Constant, Term, Variable

__all__ = [
    "rulebase_to_dict",
    "rulebase_from_dict",
    "database_to_dict",
    "database_from_dict",
    "dumps_rulebase",
    "loads_rulebase",
    "dumps_database",
    "loads_database",
]

_FORMAT = 1


def _term_to_dict(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    return {"const": term.value}


def _term_from_dict(data: dict[str, Any]) -> Term:
    if "var" in data:
        return Variable(data["var"])
    if "const" in data:
        return Constant(data["const"])
    raise ValidationError(f"not a term: {data!r}")


def _atom_to_dict(atom: Atom) -> dict[str, Any]:
    return {
        "predicate": atom.predicate,
        "args": [_term_to_dict(term) for term in atom.args],
    }


def _atom_from_dict(data: dict[str, Any]) -> Atom:
    return Atom(
        data["predicate"], tuple(_term_from_dict(term) for term in data["args"])
    )


def _premise_to_dict(premise: Premise) -> dict[str, Any]:
    if isinstance(premise, Positive):
        return {"kind": "positive", "atom": _atom_to_dict(premise.atom)}
    if isinstance(premise, Negated):
        return {"kind": "negated", "atom": _atom_to_dict(premise.atom)}
    payload = {
        "kind": "hypothetical",
        "atom": _atom_to_dict(premise.atom),
        "additions": [_atom_to_dict(atom) for atom in premise.additions],
    }
    if premise.deletions:
        payload["deletions"] = [_atom_to_dict(atom) for atom in premise.deletions]
    return payload


def _premise_from_dict(data: dict[str, Any]) -> Premise:
    kind = data.get("kind")
    atom = _atom_from_dict(data["atom"])
    if kind == "positive":
        return Positive(atom)
    if kind == "negated":
        return Negated(atom)
    if kind == "hypothetical":
        return Hypothetical(
            atom,
            tuple(_atom_from_dict(item) for item in data["additions"]),
            tuple(_atom_from_dict(item) for item in data.get("deletions", ())),
        )
    raise ValidationError(f"unknown premise kind {kind!r}")


def rulebase_to_dict(rulebase: Rulebase) -> dict[str, Any]:
    """A JSON-safe dict for a rulebase."""
    return {
        "format": _FORMAT,
        "rules": [
            {
                "head": _atom_to_dict(item.head),
                "body": [_premise_to_dict(premise) for premise in item.body],
            }
            for item in rulebase
        ],
    }


def rulebase_from_dict(data: dict[str, Any]) -> Rulebase:
    """Inverse of :func:`rulebase_to_dict`."""
    if data.get("format") != _FORMAT:
        raise ValidationError(f"unsupported rulebase format {data.get('format')!r}")
    return Rulebase(
        Rule(
            _atom_from_dict(item["head"]),
            tuple(_premise_from_dict(premise) for premise in item["body"]),
        )
        for item in data["rules"]
    )


def database_to_dict(db: Database) -> dict[str, Any]:
    """A JSON-safe dict for a database (facts sorted for stability)."""
    return {
        "format": _FORMAT,
        "facts": [
            _atom_to_dict(item)
            for item in sorted(db, key=lambda atom: (atom.predicate, str(atom)))
        ],
    }


def database_from_dict(data: dict[str, Any]) -> Database:
    """Inverse of :func:`database_to_dict`."""
    if data.get("format") != _FORMAT:
        raise ValidationError(f"unsupported database format {data.get('format')!r}")
    return Database(_atom_from_dict(item) for item in data["facts"])


def dumps_rulebase(rulebase: Rulebase, **kwargs: Any) -> str:
    """Rulebase to JSON text."""
    return json.dumps(rulebase_to_dict(rulebase), **kwargs)


def loads_rulebase(text: str) -> Rulebase:
    """Rulebase from JSON text."""
    return rulebase_from_dict(json.loads(text))


def dumps_database(db: Database, **kwargs: Any) -> str:
    """Database to JSON text."""
    return json.dumps(database_to_dict(db), **kwargs)


def loads_database(text: str) -> Database:
    """Database from JSON text."""
    return database_from_dict(json.loads(text))
