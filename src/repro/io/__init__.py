"""Serialization of rulebases and databases."""

from .serialize import (
    database_from_dict,
    database_to_dict,
    dumps_database,
    dumps_rulebase,
    loads_database,
    loads_rulebase,
    rulebase_from_dict,
    rulebase_to_dict,
)

__all__ = [
    "rulebase_to_dict",
    "rulebase_from_dict",
    "database_to_dict",
    "database_from_dict",
    "dumps_rulebase",
    "loads_rulebase",
    "dumps_database",
    "loads_database",
]
