"""Unit tests for the PROVE_Sigma / PROVE_Delta prover (Section 5.2)."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError, StratificationError
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.library import (
    addition_chain_rulebase,
    graph_db,
    hamiltonian_complement_rulebase,
    hamiltonian_rulebase,
    parity_db,
    parity_rulebase,
)


class TestConstruction:
    def test_requires_linear_stratification(self):
        from repro.library import example10_rulebase

        with pytest.raises(StratificationError):
            LinearStratifiedProver(example10_rulebase())

    def test_accepts_precomputed_stratification(self):
        from repro.analysis.stratify import linear_stratification

        rb = parity_rulebase()
        stratification = linear_stratification(rb)
        prover = LinearStratifiedProver(rb, stratification)
        assert prover.stratification is stratification


class TestInferenceRules:
    def test_line1_database_membership(self):
        prover = LinearStratifiedProver(parse_program("x :- y."))
        db = Database([atom("f")])
        assert prover.ask(db, "f")

    def test_line2_hypothetical(self):
        prover = LinearStratifiedProver(parse_program("a :- b."))
        assert prover.ask(Database(), "a[add: b]")

    def test_sigma_linear_recursion(self):
        prover = LinearStratifiedProver(addition_chain_rulebase(5))
        assert prover.ask(Database(), "a1")
        assert not prover.ask(Database(), "a3")

    def test_delta_negation(self):
        rb = parse_program("p(X) :- d(X), ~q(X).")
        prover = LinearStratifiedProver(rb)
        db = Database.from_relations({"d": ["a", "b"], "q": ["a"]})
        assert prover.answers(db, "p(X)") == {("b",)}

    def test_cross_stratum_negation(self):
        # no :- ~yes with yes in Sigma_1: negation on a Sigma predicate.
        rb = parse_program(
            """
            yes :- trigger, yes[add: h].
            yes :- h.
            no :- ~yes.
            """
        )
        prover = LinearStratifiedProver(rb)
        assert prover.ask(Database([atom("trigger")]), "yes")
        assert not prover.ask(Database([atom("trigger")]), "no")
        assert prover.ask(Database(), "no")

    def test_answers_enumeration(self):
        rb = hamiltonian_rulebase()
        db = graph_db(["a", "b"], [("a", "b")])
        prover = LinearStratifiedProver(rb)
        assert prover.answers(db, "select(Y)") == {("a",), ("b",)}


class TestAgreementWithReferenceEngine:
    @pytest.mark.parametrize("n", range(5))
    def test_parity(self, n):
        rb = parity_rulebase()
        db = parity_db([f"x{i}" for i in range(n)])
        prover = LinearStratifiedProver(rb)
        model = PerfectModelEngine(rb)
        for query in ("even", "odd"):
            assert prover.ask(db, query) == model.ask(db, query)

    @pytest.mark.parametrize(
        "edges,expected",
        [
            ([("a", "b"), ("b", "c")], True),
            ([("a", "b"), ("a", "c")], False),
            ([("a", "b"), ("b", "c"), ("c", "a")], True),
            ([], False),
        ],
    )
    def test_hamiltonian(self, edges, expected):
        rb = hamiltonian_rulebase()
        db = graph_db(["a", "b", "c"], edges)
        prover = LinearStratifiedProver(rb)
        model = PerfectModelEngine(rb)
        assert prover.ask(db, "yes") is expected
        assert model.ask(db, "yes") is expected

    def test_complement_rulebase(self):
        rb = hamiltonian_complement_rulebase()
        prover = LinearStratifiedProver(rb)
        db_yes = graph_db(["a", "b"], [("a", "b")])
        db_no = graph_db(["a", "b"], [])
        assert prover.ask(db_yes, "yes") and not prover.ask(db_yes, "no")
        assert prover.ask(db_no, "no") and not prover.ask(db_no, "yes")


class TestSearchMechanics:
    def test_true_goals_cached(self):
        prover = LinearStratifiedProver(addition_chain_rulebase(4))
        prover.ask(Database(), "a1")
        goals_first = prover.stats.sigma_goals
        prover.ask(Database(), "a1")
        assert prover.stats.sigma_goals == goals_first
        assert prover.stats.sigma_cache_hits >= 1

    def test_clear_caches(self):
        prover = LinearStratifiedProver(addition_chain_rulebase(3))
        prover.ask(Database(), "a1")
        prover.clear_caches()
        before = prover.stats.sigma_cache_hits
        prover.ask(Database(), "a1")
        # After clearing, the first lookup cannot hit the cache.
        assert prover.stats.sigma_goals > 0

    def test_memoize_disabled_still_correct(self):
        prover = LinearStratifiedProver(parity_rulebase(), memoize=False)
        assert prover.ask(parity_db(["x", "y"]), "even")
        assert not prover.ask(parity_db(["x"]), "even")

    def test_cycle_in_sigma_handled(self):
        # p and q mutually recursive through positive premises inside a
        # Sigma segment (hypothetical recursion also present): the DFS
        # must cut the cycle and still find the base proof.
        rb = parse_program(
            """
            p :- q.
            q :- p.
            p :- p[add: h].
            p :- h.
            """
        )
        prover = LinearStratifiedProver(rb)
        assert prover.ask(Database(), "p")
        assert prover.ask(Database(), "q")
        assert prover.stats.cycles_cut >= 1

    def test_failure_after_cycle_not_wrongly_cached(self):
        # Failing `q` (whose proof attempt cycles through p) must not
        # poison a later, provable `p` query path.
        rb = parse_program(
            """
            p :- q.
            q :- p.
            p :- p[add: h].
            p :- h.
            """
        )
        prover = LinearStratifiedProver(rb)
        # Ask q first on a db where it IS provable via the h-chain.
        assert prover.ask(Database(), "q")
        # And again from the caches.
        assert prover.ask(Database(), "q")

    def test_proof_effort_scales_polynomially_on_chains(self):
        # Appendix A: linear recursion bounds proof-sequence length
        # polynomially.  On the Example 4 chain the goal count should
        # grow linearly with n.
        counts = []
        for n in (4, 8, 16):
            prover = LinearStratifiedProver(addition_chain_rulebase(n))
            prover.ask(Database(), "a1")
            counts.append(prover.stats.sigma_goals)
        assert counts[2] - counts[1] <= 3 * (counts[1] - counts[0]) + 8
