"""Property-based tests (hypothesis) for the core invariants.

The properties mirror the paper's structural claims:

* monotonicity of negation-free inference (Section 3.1 motivates
  negation exactly because the base system is monotonic);
* order independence / genericity of constant-free rulebases
  (Sections 6.1 and 6.2.3);
* the parity rulebase computes parity on arbitrary relations
  (Example 6);
* the three engines agree wherever they all apply;
* parser/printer and serializer round trips;
* matching really grounds patterns to stored facts.
"""

import string

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.ast import Hypothetical, Negated, Positive, Rule, Rulebase
from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_rule
from repro.core.terms import Atom, Constant, Variable
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine
from repro.io.serialize import (
    dumps_database,
    dumps_rulebase,
    loads_database,
    loads_rulebase,
)
from repro.library import parity_db, parity_rulebase

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

constants = st.sampled_from([Constant(name) for name in "abcd"])
variables = st.sampled_from([Variable(name) for name in "XYZ"])
predicates = st.sampled_from(["p", "q", "r", "s"])


@st.composite
def atoms(draw, max_arity=2, ground=False):
    predicate = draw(predicates)
    arity = draw(st.integers(0, max_arity))
    pool = constants if ground else st.one_of(constants, variables)
    args = tuple(draw(pool) for _ in range(arity))
    return Atom(f"{predicate}{arity}", args)  # arity-tag avoids clashes


@st.composite
def ground_databases(draw):
    facts = draw(st.lists(atoms(ground=True), max_size=12))
    return Database(facts)


@st.composite
def positive_rules(draw):
    """Random negation-free rules (positive + hypothetical premises)."""
    head = draw(atoms())
    body = []
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.integers(0, 2))
        if kind < 2:
            body.append(Positive(draw(atoms())))
        else:
            goal = draw(atoms())
            additions = tuple(
                draw(atoms()) for _ in range(draw(st.integers(1, 2)))
            )
            body.append(Hypothetical(goal, additions))
    return Rule(head, tuple(body))


@st.composite
def positive_rulebases(draw):
    return Rulebase(draw(st.lists(positive_rules(), max_size=4)))


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


class TestRoundTrips:
    @SETTINGS
    @given(positive_rulebases())
    def test_print_parse_identity(self, rulebase):
        for item in rulebase:
            assert parse_rule(str(item)) == item

    @SETTINGS
    @given(positive_rulebases())
    def test_json_rulebase_round_trip(self, rulebase):
        assert loads_rulebase(dumps_rulebase(rulebase)) == rulebase

    @SETTINGS
    @given(ground_databases())
    def test_json_database_round_trip(self, db):
        assert loads_database(dumps_database(db)) == db


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------


class TestMatching:
    @SETTINGS
    @given(ground_databases(), atoms())
    def test_matches_ground_to_stored_facts(self, db, pattern):
        for binding in db.matches(pattern):
            grounded = pattern.substitute(binding)
            assert grounded.is_ground
            assert grounded in db


# ----------------------------------------------------------------------
# Monotonicity of the negation-free fragment
# ----------------------------------------------------------------------


class TestMonotonicity:
    @SETTINGS
    @given(positive_rulebases(), ground_databases(), atoms(ground=True))
    def test_adding_facts_never_removes_inferences(self, rulebase, db, extra):
        engine = TopDownEngine(rulebase)
        bigger = db.with_facts(extra)
        goals = [Atom(f"p{a}", tuple(Constant(c) for c in "ab"[:a])) for a in (0, 1)]
        for goal in goals:
            if engine.ask(db, goal):
                assert engine.ask(bigger, goal)

    @SETTINGS
    @given(positive_rulebases(), ground_databases())
    def test_model_contains_database(self, rulebase, db):
        # A rare draw combines hypothetical premises into a program
        # whose database lattice exceeds any reasonable budget —
        # Theorem 1 says such programs exist, so reject them quickly
        # (small budget) rather than grinding through the default one.
        engine = PerfectModelEngine(rulebase, max_databases=2_000)
        try:
            model = engine.model(db)
        except EvaluationError:
            assume(False)
        assert db.facts <= model


# ----------------------------------------------------------------------
# Engine agreement
# ----------------------------------------------------------------------


class TestEngineAgreement:
    @SETTINGS
    @given(positive_rulebases(), ground_databases())
    def test_three_engines_agree_on_positive_programs(self, rulebase, db):
        from repro.analysis.stratify import is_linearly_stratified

        model = PerfectModelEngine(rulebase, max_databases=3000)
        top = TopDownEngine(rulebase)
        engines = [model, top]
        if is_linearly_stratified(rulebase):
            engines.append(LinearStratifiedProver(rulebase))
        goals = [
            Atom("p0", ()),
            Atom("q0", ()),
            Atom("p1", (Constant("a"),)),
            Atom("q2", (Constant("a"), Constant("b"))),
        ]
        from repro.core.errors import EvaluationError

        for goal in goals:
            try:
                expected = model.ask(db, goal)
            except EvaluationError:
                continue  # blew the database budget; skip this goal
            for engine in engines[1:]:
                assert engine.ask(db, goal) == expected


# ----------------------------------------------------------------------
# Engine agreement on random programs WITH stratified negation
# ----------------------------------------------------------------------


@st.composite
def stratified_rulebases(draw):
    """Random layered programs mixing positives, hypotheticals, and
    negation, stratified by construction: predicate ``p{i}`` may negate
    only strictly lower predicates (or EDB), reference lower-or-equal
    predicates positively, and recurse hypothetically on itself.
    Arities are fixed per predicate so rulebases always validate."""
    from repro.core.ast import Negated as Neg

    layers = draw(st.integers(1, 3))
    arity_of = {f"p{index}": draw(st.integers(0, 1)) for index in range(layers)}
    edb = ["e0", "e1"]  # unary EDB predicates
    rules = []

    def idb_atom(name):
        if arity_of[name] == 0:
            return Atom(name, ())
        return Atom(name, (draw(st.one_of(constants, variables)),))

    for index in range(layers):
        name = f"p{index}"
        head_args = (Variable("X"),) if arity_of[name] else ()
        head = Atom(name, head_args)
        for _ in range(draw(st.integers(1, 2))):
            body = []
            if head_args:
                body.append(
                    Positive(Atom(draw(st.sampled_from(edb)), (Variable("X"),)))
                )
            for _ in range(draw(st.integers(0, 2))):
                kind = draw(st.integers(0, 2))
                use_edb = draw(st.booleans())
                target_layer = draw(st.integers(0, index))
                if use_edb:
                    target = Atom(
                        draw(st.sampled_from(edb)),
                        (draw(st.one_of(constants, variables)),),
                    )
                else:
                    target = idb_atom(f"p{target_layer}")
                if kind == 0:
                    body.append(Positive(target))
                elif kind == 1 and (use_edb or target_layer < index):
                    body.append(Neg(target))
                else:
                    body.append(
                        Hypothetical(
                            Atom(name, head_args),
                            (
                                Atom(
                                    draw(st.sampled_from(edb)),
                                    (Constant(draw(st.sampled_from("ab"))),),
                                ),
                            ),
                        )
                    )
            rules.append(Rule(head, tuple(body)))
    return Rulebase(rules)


@st.composite
def edb_databases(draw):
    """Facts over the unary EDB predicates the stratified strategy uses."""
    facts = []
    for predicate in ("e0", "e1"):
        for payload in draw(st.sets(st.sampled_from("abc"), max_size=3)):
            facts.append(Atom(predicate, (Constant(payload),)))
    return Database(facts)


class TestStratifiedAgreement:
    @SETTINGS
    @given(stratified_rulebases(), edb_databases())
    def test_engines_agree_with_negation(self, rulebase, db):
        from repro.analysis.stratify import is_linearly_stratified
        from repro.core.errors import EvaluationError, StratificationError

        try:
            top = TopDownEngine(rulebase)
            model = PerfectModelEngine(rulebase, max_databases=3000)
        except StratificationError:
            return  # hypothesis generated recursion through negation? skip
        engines = [top]
        if is_linearly_stratified(rulebase):
            engines.append(LinearStratifiedProver(rulebase))
        goals = [Atom("p0", ()), Atom("p1", ()), Atom("p2", ())]
        for goal in goals:
            try:
                expected = model.ask(db, goal)
            except EvaluationError:
                continue
            for engine in engines:
                assert engine.ask(db, goal) == expected


# ----------------------------------------------------------------------
# Proof round trips
# ----------------------------------------------------------------------


class TestProofProperties:
    @SETTINGS
    @given(positive_rulebases(), ground_databases())
    def test_provable_goals_have_verifiable_proofs(self, rulebase, db):
        from repro.engine.proofs import Explainer, verify_proof

        engine = TopDownEngine(rulebase)
        explainer = Explainer(rulebase)
        for goal in (Atom("p0", ()), Atom("q1", (Constant("a"),))):
            if engine.ask(db, goal):
                proof = explainer.explain(db, goal)
                assert proof is not None, f"{goal} provable but unexplained"
                assert verify_proof(rulebase, proof)
            else:
                assert explainer.explain(db, goal) is None


# ----------------------------------------------------------------------
# Example 6 as a property: parity of arbitrary relations
# ----------------------------------------------------------------------


class TestParityProperty:
    @SETTINGS
    @given(st.sets(st.sampled_from(list(string.ascii_lowercase[:8])), max_size=8))
    def test_even_iff_cardinality_even(self, items):
        engine = LinearStratifiedProver(parity_rulebase())
        db = parity_db(sorted(items))
        assert engine.ask(db, "even") == (len(items) % 2 == 0)

    @SETTINGS
    @given(
        st.sets(st.sampled_from(list(string.ascii_lowercase[:6])), max_size=6),
        st.permutations(list(string.ascii_lowercase[:6])),
    )
    def test_genericity_under_permutations(self, items, shuffled):
        # Section 6.2.3: renaming the domain never changes a
        # constant-free rulebase's yes/no answer.
        mapping = dict(zip(string.ascii_lowercase[:6], shuffled))
        engine = LinearStratifiedProver(parity_rulebase())
        db = parity_db(sorted(items))
        renamed = db.rename(mapping)
        assert engine.ask(db, "even") == engine.ask(renamed, "even")


# ----------------------------------------------------------------------
# The intuitionistic laws on random tiny programs (footnote 3)
# ----------------------------------------------------------------------


@st.composite
def tiny_positive_rulebases(draw):
    """Negation-free propositional programs over a 5-atom vocabulary —
    small enough to enumerate the full Kripke world lattice."""
    names = ["u", "v", "w", "y"]
    prop = st.sampled_from([Atom(name, ()) for name in names])
    rules = []
    for _ in range(draw(st.integers(1, 4))):
        head = draw(prop)
        body = []
        for _ in range(draw(st.integers(0, 2))):
            if draw(st.booleans()):
                body.append(Positive(draw(prop)))
            else:
                body.append(Hypothetical(draw(prop), (draw(prop),)))
        rules.append(Rule(head, tuple(body)))
    return Rulebase(rules)


class TestKripkeProperty:
    @settings(max_examples=10, deadline=None)
    @given(tiny_positive_rulebases())
    def test_intuitionistic_laws_hold(self, rulebase):
        from repro.semantics.kripke import KripkeStructure

        structure = KripkeStructure.build(rulebase, Database())
        assert structure.check_persistence() is None
        assert structure.check_implication_law() is None


# ----------------------------------------------------------------------
# Stratification invariants
# ----------------------------------------------------------------------


class TestStratificationProperty:
    @SETTINGS
    @given(st.integers(1, 6), st.integers(0, 100))
    def test_layered_rulebases_round_trip_strata(self, strata, seed):
        from repro.analysis.stratify import linear_stratification
        from repro.bench.workloads import random_layered_rulebase

        rulebase = random_layered_rulebase(3 * strata, strata, seed)
        stratification = linear_stratification(rulebase)
        assert stratification.k == strata
        # Every rule is assigned to exactly one segment, and the
        # H-stratification constraints hold by construction.
        assigned = sum(
            len(stratification.segment_rules(segment))
            for segment in range(1, stratification.n_segments + 1)
        )
        assert assigned == len(rulebase)
