"""Fault-injection matrix: every guarded site degrades gracefully.

:data:`repro.testing.failpoints.KNOWN_SITES` is the registry of budget
check sites inside the evaluators.  For each one this module arms a
failpoint, drives a workload that organically reaches the site, and
asserts the injected failure surfaces as a clean
:class:`~repro.core.errors.ResourceExhausted` — after which the same
engine answers correctly, proving no poisoned caches or stuck search
state survive the trip.  The ``model.invariant`` site additionally
drives the differential engine's one-shot naive fallback.
"""

import pytest

from repro.core.errors import InvariantViolation, ResourceExhausted
from repro.core.parser import parse_program
from repro.engine.budget import Budget
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.stratified import perfect_model
from repro.engine.topdown import TopDownEngine
from repro.library import graph_db, hamiltonian_rulebase
from repro.testing import failpoints

TC = "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y)."


def _ham_db():
    return graph_db(["a", "b", "c"], [("a", "b"), ("b", "c")])


def _prove(budget):
    return LinearStratifiedProver(hamiltonian_rulebase()).ask(
        _ham_db(), "yes", budget=budget
    )


def _topdown(budget):
    return TopDownEngine(hamiltonian_rulebase()).ask(
        _ham_db(), "yes", budget=budget
    )


def _topdown_exists(budget):
    return TopDownEngine(hamiltonian_rulebase()).ask(
        _ham_db(), "select(Y)", budget=budget
    )


def _model(budget):
    return PerfectModelEngine(hamiltonian_rulebase()).ask(
        _ham_db(), "yes", budget=budget
    )


def _model_exists(budget):
    # ``model.exists`` guards the hypothetical-grounding loop, reached
    # only when the query premise itself is hypothetical.
    return PerfectModelEngine(hamiltonian_rulebase()).ask(
        _ham_db(), "yes[add: edge(c, a)]", budget=budget
    )


def _stratified(budget):
    nodes = [f"n{i}" for i in range(6)]
    db = graph_db(nodes, [(nodes[i], nodes[i + 1]) for i in range(5)])
    return perfect_model(parse_program(TC), db, budget=budget)


#: site -> a workload that reaches it while a budget is active.
WORKLOADS = {
    "prove.sigma_goals": _prove,
    "prove.delta_models": _prove,
    "prove.delta_firings": _prove,
    "prove.delta_atoms": _prove,
    "prove.exists": _prove,
    "topdown.goals": _topdown,
    "topdown.exists": _topdown_exists,
    "model.models_computed": _model,
    "model.exists": _model_exists,
    "delta.round": _stratified,
    "delta.firings": _stratified,
    "delta.derived": _stratified,
    "stratified.stratum": _stratified,
}

# The network-layer sites are reached per connection/frame, not per
# budget charge; their fault-injection matrix lives in
# tests/test_server.py against a live server.
MATRIX_SITES = sorted(
    failpoints.KNOWN_SITES - failpoints.NETWORK_SITES - {"model.invariant"}
)


def test_workload_map_covers_registry():
    assert (
        set(WORKLOADS)
        == failpoints.KNOWN_SITES - failpoints.NETWORK_SITES - {"model.invariant"}
    )


def test_network_sites_registered():
    # docs/SERVER.md promises every network site is armable by name.
    assert failpoints.NETWORK_SITES <= failpoints.KNOWN_SITES
    for site in failpoints.NETWORK_SITES:
        with failpoints.armed(site):
            assert failpoints.enabled
    assert not failpoints.enabled


@pytest.mark.parametrize("site", MATRIX_SITES)
def test_injected_exhaustion_surfaces_cleanly(site):
    workload = WORKLOADS[site]
    with failpoints.armed(site, reason="injected") as handle:
        with pytest.raises(ResourceExhausted) as exc:
            workload(Budget())
    assert handle.hits == 1
    assert exc.value.site == site
    assert exc.value.reason == "injected"


@pytest.mark.parametrize("site", MATRIX_SITES)
def test_recovery_after_injection(site):
    # Same engine object: trip it, then ask again without the fault.
    if site.startswith("prove."):
        engine = LinearStratifiedProver(hamiltonian_rulebase())
        run = lambda b: engine.ask(_ham_db(), "yes", budget=b)
    elif site.startswith("topdown."):
        engine = TopDownEngine(hamiltonian_rulebase())
        query = "select(Y)" if site == "topdown.exists" else "yes"
        run = lambda b: engine.ask(_ham_db(), query, budget=b)
    elif site.startswith("model."):
        engine = PerfectModelEngine(hamiltonian_rulebase())
        query = "yes[add: edge(c, a)]" if site == "model.exists" else "yes"
        run = lambda b: engine.ask(_ham_db(), query, budget=b)
    else:
        run = _stratified
    with failpoints.armed(site):
        with pytest.raises(ResourceExhausted):
            run(Budget())
    assert run(Budget()) is not False  # True for asks, a model otherwise


@pytest.mark.parametrize("site", MATRIX_SITES)
def test_failpoints_inert_without_budget(site):
    # No budget configured -> the guards are skipped entirely, so an
    # armed failpoint must not fire (production hot paths stay cold).
    with failpoints.armed(site) as handle:
        WORKLOADS[site](None)
    assert handle.hits == 0


def test_unknown_site_rejected():
    with pytest.raises(ValueError):
        with failpoints.armed("nonsense.site"):
            pass
    with pytest.raises(ValueError):
        with failpoints.armed("topdown.goals", kind="nonsense"):
            pass


def test_skip_delays_the_trip():
    with failpoints.armed("topdown.goals", skip=2) as handle:
        with pytest.raises(ResourceExhausted):
            _topdown(Budget())
    assert handle.hits == 1
    assert handle.skip == 0


def test_cancelled_reason_simulates_ctrl_c():
    with failpoints.armed("prove.sigma_goals", reason="cancelled"):
        with pytest.raises(ResourceExhausted) as exc:
            _prove(Budget())
    assert exc.value.reason == "cancelled"


def test_reset_disarms_everything():
    ctx = failpoints.armed("topdown.goals")
    ctx.__enter__()
    assert failpoints.enabled
    failpoints.reset()
    assert not failpoints.enabled
    _topdown(Budget())  # does not trip
    ctx.__exit__(None, None, None)


class TestInvariantFallback:
    def test_injected_invariant_falls_back_to_naive(self):
        engine = PerfectModelEngine(hamiltonian_rulebase())
        with failpoints.armed("model.invariant", kind="invariant"):
            assert engine.ask(_ham_db(), "yes", budget=Budget()) is True
        assert engine.metrics.counter("engine.fallbacks").value == 1
        assert any(
            d.code == "engine-fallback" for d in engine.diagnostics
        )

    def test_fallback_answers_match_unfaulted_engine(self):
        db = _ham_db()
        reference = PerfectModelEngine(hamiltonian_rulebase()).answers(
            db, "select(Y)"
        )
        engine = PerfectModelEngine(hamiltonian_rulebase())
        with failpoints.armed("model.invariant", kind="invariant"):
            assert engine.answers(db, "select(Y)", budget=Budget()) == reference

    def test_naive_engine_does_not_fall_back(self):
        # The invariant is a property of the differential path; a naive
        # engine re-raises instead of "falling back" to itself.
        engine = PerfectModelEngine(hamiltonian_rulebase(), strategy="naive")
        with failpoints.armed("model.invariant", kind="invariant"):
            assert engine.ask(_ham_db(), "yes", budget=Budget()) is True
        assert engine.metrics.counter("engine.fallbacks").value == 0

    def test_clean_runs_never_fall_back(self):
        engine = PerfectModelEngine(hamiltonian_rulebase(), cross_check=True)
        assert engine.ask(_ham_db(), "yes") is True
        assert engine.metrics.counter("engine.fallbacks").value == 0
