"""Fine-grained tests of the Section 5.1 rule generators."""

import pytest

from repro.core.ast import Hypothetical, Negated, Positive
from repro.core.terms import Variable
from repro.machines.encode import (
    CounterScheme,
    cascade_rulebase,
    tape_alphabet,
    top_entry_rule,
)
from repro.machines.library import (
    contains_one,
    contains_one_cascade,
    no_ones_cascade,
)
from repro.machines.oracle import Cascade
from repro.machines.turing import BLANK


@pytest.fixture(scope="module")
def k1():
    return Cascade((contains_one(),))


@pytest.fixture(scope="module")
def k2():
    return no_ones_cascade()


class TestCounterScheme:
    def test_default_variables(self):
        scheme = CounterScheme()
        assert scheme.variables("T") == (Variable("T"),)

    def test_tuple_variables(self):
        scheme = CounterScheme(arity=3)
        names = [v.name for v in scheme.variables("T")]
        assert names == ["Tx1", "Tx2", "Tx3"]

    def test_next_premise_arity(self):
        scheme = CounterScheme(arity=2)
        old = scheme.variables("T")
        new = scheme.variables("Tp")
        premise = scheme.next_premise(old, new)
        assert premise.atom.predicate == "next"
        assert premise.atom.arity == 4


class TestRuleShapes:
    def test_accept_rule_per_accepting_state(self, k1):
        rulebase = cascade_rulebase(k1)
        accept_rules = [
            item
            for item in rulebase.definition("accept1")
            if len(item.body) == 1
        ]
        # contains_one has one accepting state -> one detection rule.
        assert len(accept_rules) == 1
        assert accept_rules[0].body[0].atom.predicate == "control1_acc"

    def test_transition_rule_per_step(self, k1):
        rulebase = cascade_rulebase(k1)
        hypothetical_rules = [
            item
            for item in rulebase.definition("accept1")
            if any(isinstance(premise, Hypothetical) for premise in item.body)
        ]
        # one per machine step
        assert len(hypothetical_rules) == len(contains_one().steps)

    def test_level1_control_is_binary(self, k1):
        rulebase = cascade_rulebase(k1)
        assert rulebase.arity("control1_scan") == 2

    def test_level2_control_is_ternary(self, k2):
        rulebase = cascade_rulebase(k2)
        assert rulebase.arity("control2_c") == 3

    def test_frame_rules_cover_tape_alphabet(self, k2):
        rulebase = cascade_rulebase(k2)
        for level in (1, 2):
            for symbol in tape_alphabet(k2, level):
                from repro.machines.encode import cell_predicate

                cell = cell_predicate(level, symbol)
                frame = [
                    item
                    for item in rulebase.definition(cell)
                    if any(isinstance(p, Negated) for p in item.body)
                ]
                assert frame, f"no frame rule for {cell}"

    def test_oracle_tape_alphabet_feeds_lower_frame(self, k2):
        # level-1 tape symbols include what the level-2 machine writes.
        symbols = tape_alphabet(k2, 1)
        assert k2.machine_at_level(2).oracle_alphabet <= symbols

    def test_query_state_is_not_active(self, k2):
        rulebase = cascade_rulebase(k2)
        active_controls = {
            item.body[0].atom.predicate
            for item in rulebase.definition("active2")
        }
        query = k2.machine_at_level(2).query_state
        assert f"control2_{query}" not in active_controls

    def test_oracle_rules_pair_yes_and_no(self, k2):
        rulebase = cascade_rulebase(k2)
        oracle_premises = [
            premise
            for item in rulebase.definition("accept2")
            for premise in item.body
            if premise.goal.predicate == "oracle1"
        ]
        kinds = {type(premise).__name__ for premise in oracle_premises}
        assert kinds == {"Positive", "Negated"}

    def test_top_entry_rule_shape(self, k2):
        entry = top_entry_rule(k2)
        assert entry.head.predicate == "accept"
        assert entry.head.arity == 0
        first, hypothetical = entry.body
        assert isinstance(first, Positive) and first.atom.predicate == "first"
        assert isinstance(hypothetical, Hypothetical)
        assert hypothetical.atom.predicate == "accept2"

    def test_include_top_rule_false(self, k2):
        without = cascade_rulebase(k2, include_top_rule=False)
        assert "accept" not in without.defined_predicates()

    def test_high_arity_scheme_rules_parse_back(self, k1):
        from repro.core.parser import parse_rule

        rulebase = cascade_rulebase(k1, scheme=CounterScheme(arity=2))
        for item in rulebase:
            assert parse_rule(str(item)) == item
