"""Unit tests for the predicate dependency graph."""

import pytest

from repro.analysis.depgraph import DependencyGraph, Edge
from repro.core.parser import parse_program


def graph_of(text):
    return DependencyGraph.from_rulebase(parse_program(text))


class TestEdges:
    def test_edge_kinds(self):
        graph = graph_of("p(X) :- q(X), ~r(X), s(X)[add: t(X)].")
        kinds = {(e.target, e.kind) for e in graph.edges}
        assert kinds == {
            ("q", "positive"),
            ("r", "negative"),
            ("s", "hypothetical"),
        }

    def test_additions_do_not_create_edges(self):
        graph = graph_of("p :- q[add: t].")
        assert all(edge.target != "t" for edge in graph.edges)
        # ... but t is still a node (it is part of the vocabulary).
        assert "t" in graph.nodes

    def test_nodes_include_edb(self):
        graph = graph_of("p(X) :- q(X).")
        assert graph.nodes == {"p", "q"}

    def test_successors(self):
        graph = graph_of("p :- q, r. q :- s.")
        assert graph.successors("p") == {"q", "r"}
        assert graph.successors("s") == frozenset()


class TestSCCs:
    def test_mutual_recursion_single_component(self):
        graph = graph_of("even :- odd. odd :- even.")
        assert graph.component_of("even") == {"even", "odd"}

    def test_components_in_dependency_order(self):
        graph = graph_of("top :- mid. mid :- bottom.")
        components = graph.sccs()
        order = {next(iter(c)): i for i, c in enumerate(components)}
        assert order["bottom"] < order["mid"] < order["top"]

    def test_self_loop(self):
        graph = graph_of("p :- p.")
        assert graph.component_of("p") == {"p"}
        assert graph.internal_edge_kinds(frozenset({"p"})) == {"positive"}

    def test_hypothetical_recursion_detected(self):
        graph = graph_of("path(X) :- path(X)[add: pnode(X)].")
        assert graph.internal_edge_kinds(graph.component_of("path")) == {
            "hypothetical"
        }

    def test_unknown_predicate(self):
        graph = graph_of("p :- q.")
        with pytest.raises(KeyError):
            graph.component_of("ghost")

    def test_has_cycle_through(self):
        negative_cycle = graph_of("a :- ~b. b :- ~a.")
        assert negative_cycle.has_cycle_through("negative")
        acyclic = graph_of("a :- ~b. b :- c.")
        assert not acyclic.has_cycle_through("negative")

    def test_long_chain_does_not_recurse_python(self):
        # 2000-deep chain: iterative Tarjan must not hit the recursion limit.
        lines = [f"p{i} :- p{i + 1}." for i in range(2000)]
        graph = graph_of("\n".join(lines))
        assert len(graph.sccs()) == 2001

    def test_two_separate_cycles(self):
        graph = graph_of("a :- b. b :- a. c :- d. d :- c.")
        assert graph.component_of("a") == {"a", "b"}
        assert graph.component_of("c") == {"c", "d"}


class TestDotExport:
    def test_edge_styles(self):
        graph = graph_of("p(X) :- q(X), ~r(X), s(X)[add: t(X)].")
        dot = graph.to_dot()
        assert dot.startswith("digraph dependencies {")
        assert '"p" -> "q";' in dot
        assert '"p" -> "r" [style=dashed, label="~"];' in dot
        assert '"p" -> "s" [style=dotted, label="[add]"];' in dot

    def test_mutual_recursion_cluster(self):
        graph = graph_of("even :- odd. odd :- even.")
        dot = graph.to_dot()
        assert "subgraph cluster_" in dot
        assert "mutually recursive" in dot

    def test_duplicate_edges_collapse(self):
        graph = graph_of("p :- q. p :- q.")
        dot = graph.to_dot()
        assert dot.count('"p" -> "q"') == 1
