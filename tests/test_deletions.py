"""Tests for the hypothetical-deletion extension (``A[del: B]``).

The paper's introduction cites its companion [4] for the fact that
allowing hypothetical deletions raises data-complexity from PSPACE to
EXPTIME.  The extension is supported end to end: syntax, top-down
evaluation, bottom-up evaluation (with deletion propagation, see
tests/test_dred.py), and classification; the linear stratification
analysis and the linear prover reject it explicitly.
"""

import pytest

from repro.analysis.classify import classify
from repro.analysis.stratify import is_linearly_stratified
from repro.core.ast import Hypothetical
from repro.core.database import Database
from repro.core.errors import EvaluationError, ParseError, ValidationError
from repro.core.parser import parse_premise, parse_program, parse_rule
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.query import Session
from repro.engine.topdown import TopDownEngine


class TestSyntax:
    def test_parse_deletion(self):
        premise = parse_premise("a[del: b]")
        assert premise == Hypothetical(atom("a"), (), (atom("b"),))

    def test_parse_add_and_del(self):
        premise = parse_premise("a[add: b, c][del: d]")
        assert premise.additions == (atom("b"), atom("c"))
        assert premise.deletions == (atom("d"),)

    def test_del_before_add(self):
        premise = parse_premise("a[del: d][add: b]")
        assert premise.additions == (atom("b"),)
        assert premise.deletions == (atom("d"),)

    def test_duplicate_group_rejected(self):
        with pytest.raises(ParseError):
            parse_premise("a[add: b][add: c]")

    def test_unknown_group_rejected(self):
        with pytest.raises(ParseError):
            parse_premise("a[mod: b]")

    def test_empty_hypothetical_rejected(self):
        with pytest.raises(ValidationError):
            Hypothetical(atom("a"), (), ())

    def test_round_trip(self):
        rule = parse_rule("p(X) :- q(X)[add: r(X)][del: s(X)].")
        assert parse_rule(str(rule)) == rule

    def test_variables_include_deletions(self):
        premise = parse_premise("a[del: b(X, Y)]")
        assert {v.name for v in premise.variables()} == {"X", "Y"}


class TestSemantics:
    def test_deletion_removes_a_fact(self):
        # q holds at DB; q[del: f] evaluates at DB - {f}.
        engine = TopDownEngine(parse_program("q :- f. test :- q[del: f]."))
        db = Database([atom("f")])
        assert engine.ask(db, "q")
        assert not engine.ask(db, "test")

    def test_deletion_of_absent_fact_is_noop(self):
        engine = TopDownEngine(parse_program("test :- q[del: f]. q :- g."))
        db = Database([atom("g")])
        assert engine.ask(db, "test")

    def test_deletions_apply_before_additions(self):
        # a[del: f][add: f]: f is present afterwards.
        engine = TopDownEngine(parse_program("test :- q[del: f][add: f]. q :- f."))
        assert engine.ask(Database(), "test")
        assert engine.ask(Database([atom("f")]), "test")

    def test_counterfactual_toggle(self):
        # "Would the alarm still fire without the main sensor?"
        rules = parse_program(
            """
            alarm :- sensor_a.
            alarm :- sensor_b.
            redundant :- alarm, alarm[del: sensor_a].
            """
        )
        engine = TopDownEngine(rules)
        both = Database([atom("sensor_a"), atom("sensor_b")])
        only_a = Database([atom("sensor_a")])
        assert engine.ask(both, "redundant")
        assert not engine.ask(only_a, "redundant")

    def test_deletion_with_variables(self):
        rules = parse_program(
            """
            isolated(X) :- node(X), reach(X)[del: edge(X, Y)].
            reach(X) :- edge(X, Z).
            """
        )
        engine = TopDownEngine(rules)
        db = Database.from_relations(
            {"node": ["a", "b"], "edge": [("a", "b"), ("a", "a")]}
        )
        # a still reaches something after deleting ONE of its edges.
        assert engine.ask(db, "isolated(a)")
        assert not engine.ask(db, "isolated(b)")

    def test_add_then_query_then_delete_chain(self):
        rules = parse_program(
            """
            flip :- flop[add: m1].
            flop :- m1, done[del: m1].
            done :- ~m1.
            """
        )
        engine = TopDownEngine(rules)
        assert engine.ask(Database(), "flip")


class TestIntegrationWithAnalysis:
    def test_classified_exptime(self):
        rules = parse_program("p :- q[del: f].")
        report = classify(rules)
        assert report.class_name == "EXPTIME"
        assert report.well_defined

    def test_not_linearly_stratified(self):
        rules = parse_program("p :- q[del: f].")
        assert not is_linearly_stratified(rules)

    def test_session_auto_routes_to_topdown(self):
        rules = parse_program("p :- q[del: f]. q :- g.")
        session = Session(rules)
        assert session.engine_name == "topdown"
        assert session.ask(Database([atom("g")]), "p")

    def test_model_engine_accepts_deletions(self):
        # Since the DRed PR the bottom-up engine evaluates [del: ...]
        # first-class; parity with the top-down oracle is pinned in
        # tests/test_dred.py.
        engine = PerfectModelEngine(parse_program("p :- q[del: f]. q :- g."))
        assert engine.ask(Database([atom("g"), atom("f")]), "p")

    def test_prove_engine_rejects(self):
        with pytest.raises(EvaluationError):
            LinearStratifiedProver(parse_program("p :- q[del: f]."))

    def test_serialization_round_trip(self):
        from repro.io.serialize import dumps_rulebase, loads_rulebase

        rules = parse_program("p(X) :- q(X)[add: r(X)][del: s(X)].")
        assert loads_rulebase(dumps_rulebase(rules)) == rules
