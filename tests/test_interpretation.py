"""Unit tests for the Interpretation fact store."""

from repro.core.terms import Constant, Variable, atom
from repro.engine.interpretation import Interpretation


class TestInterpretation:
    def test_add_reports_novelty(self):
        interp = Interpretation()
        assert interp.add(atom("p", "a"))
        assert not interp.add(atom("p", "a"))
        assert len(interp) == 1

    def test_update_counts_new(self):
        interp = Interpretation([atom("p", "a")])
        added = interp.update([atom("p", "a"), atom("p", "b")])
        assert added == 1

    def test_contains(self):
        interp = Interpretation([atom("p", "a")])
        assert atom("p", "a") in interp
        assert atom("p", "b") not in interp
        assert atom("q", "a") not in interp

    def test_iteration_reconstructs_atoms(self):
        facts = {atom("p", "a"), atom("q", "b", "c")}
        assert set(Interpretation(facts)) == facts

    def test_relation_and_count(self):
        interp = Interpretation([atom("p", "a"), atom("p", "b")])
        assert interp.count("p") == 2
        assert interp.count("q") == 0
        assert (Constant("a"),) in interp.relation("p")

    def test_matches(self):
        interp = Interpretation([atom("e", "a", "b"), atom("e", "b", "c")])
        results = list(interp.matches(atom("e", "X", "Y")))
        assert len(results) == 2

    def test_matches_with_binding(self):
        interp = Interpretation([atom("e", "a", "b"), atom("e", "b", "c")])
        binding = {Variable("X"): Constant("b")}
        results = list(interp.matches(atom("e", "X", "Y"), binding))
        assert len(results) == 1
        assert results[0][Variable("Y")] == Constant("c")

    def test_has_match_zero_arity(self):
        interp = Interpretation([atom("yes")])
        assert interp.has_match(atom("yes"))
        assert not interp.has_match(atom("no"))

    def test_copy_is_independent(self):
        interp = Interpretation([atom("p", "a")])
        clone = interp.copy()
        clone.add(atom("p", "b"))
        assert len(interp) == 1
        assert len(clone) == 2

    def test_to_frozenset(self):
        interp = Interpretation([atom("p", "a")])
        assert interp.to_frozenset() == frozenset({atom("p", "a")})

    def test_predicates_excludes_empty(self):
        interp = Interpretation([atom("p", "a")])
        assert interp.predicates() == {"p"}
