"""Unit tests for the reference perfect-model engine."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError, StratificationError
from repro.core.parser import parse_premise, parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine


class TestBasics:
    def test_hypothetical_inference_rule(self):
        # Definition 3 rule 2: R, DB |- A[add:B] iff R, DB + {B} |- A.
        rb = parse_program("a :- b.")
        engine = PerfectModelEngine(rb)
        assert engine.ask(Database(), "a[add: b]")
        assert not engine.ask(Database(), "a")

    def test_database_membership_rule(self):
        rb = parse_program("ignored :- whatever.")
        engine = PerfectModelEngine(rb)
        db = Database.from_relations({"f": ["x"]})
        assert engine.ask(db, "f(x)")
        assert not engine.ask(db, "f(y)")

    def test_multi_addition(self):
        rb = parse_program("goal :- b1, b2.")
        engine = PerfectModelEngine(rb)
        assert engine.ask(Database(), "goal[add: b1, b2]")
        assert not engine.ask(Database(), "goal[add: b1]")

    def test_existential_variables_in_query(self):
        rb = parse_program("grad(S) :- take(S, cs1).")
        engine = PerfectModelEngine(rb)
        db = Database.from_relations({"take": [("tony", "cs1")]})
        assert engine.ask(db, "grad(S)")
        assert engine.ask(db, "grad(S)[add: take(S, C)]")

    def test_negated_query_is_not_exists(self):
        rb = parse_program("p(X) :- q(X).")
        engine = PerfectModelEngine(rb)
        assert engine.ask(Database(), "~p(X)")
        assert not engine.ask(Database.from_relations({"q": ["a"]}), "~p(X)")

    def test_answers(self):
        rb = parse_program("grad(S) :- take(S, cs1).")
        engine = PerfectModelEngine(rb)
        db = Database.from_relations({"take": [("tony", "cs1"), ("sue", "cs1")]})
        assert engine.answers(db, "grad(S)") == {("tony",), ("sue",)}

    def test_answers_rejects_non_atom(self):
        rb = parse_program("p(X) :- q(X).")
        engine = PerfectModelEngine(rb)
        with pytest.raises(EvaluationError):
            engine.answers(Database(), "~p(X)")

    def test_model_includes_database(self):
        rb = parse_program("p :- q.")
        db = Database.from_relations({"other": ["z"]})
        assert atom("other", "z") in PerfectModelEngine(rb).model(db)

    def test_rejects_recursive_negation_at_construction(self):
        with pytest.raises(StratificationError):
            PerfectModelEngine(parse_program("a :- ~b. b :- ~a."))


class TestHypotheticalSemantics:
    def test_additions_do_not_leak_between_branches(self):
        # Two independent hypothetical branches must not see each
        # other's insertions.
        rb = parse_program(
            """
            both :- left, right.
            left :- mark[add: m1].
            right :- mark[add: m2].
            mark :- m1, m2.
            """
        )
        engine = PerfectModelEngine(rb)
        # left alone needs m2 to already be there; it is not.
        assert not engine.ask(Database(), "both")

    def test_derived_atoms_are_not_database_facts(self):
        # Hypothetical premises consult DB + adds, not derived atoms:
        # derived(a) holds, but hypothetically inferring need_fact
        # requires fact(a) *in the database*.
        rb = parse_program(
            """
            derived(X) :- fact(X).
            outer :- inner[add: probe].
            inner :- probe, fact(a).
            """
        )
        engine = PerfectModelEngine(rb)
        assert engine.ask(Database.from_relations({"fact": ["a"]}), "outer")
        assert not engine.ask(Database(), "outer")

    def test_monotone_growth_in_positive_fragment(self):
        # Negation-free: adding facts never removes inferences.
        rb = parse_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            far :- reach(b)[add: edge(a, b)].
            """
        )
        engine = PerfectModelEngine(rb)
        small = Database.from_relations({"start": ["a"], "edge": []})
        big = small.with_facts(atom("edge", "b", "c"))
        model_small = engine.model(small)
        model_big = engine.model(big)
        derived_small = {a for a in model_small if a not in small}
        derived_big = {a for a in model_big if a not in big}
        assert derived_small <= derived_big

    def test_example4_chain_iff(self):
        from repro.library import addition_chain_rulebase

        rb = addition_chain_rulebase(3)
        engine = PerfectModelEngine(rb)
        empty = Database()
        assert engine.ask(empty, "a1")
        assert not engine.ask(empty, "a2")
        primed = Database([atom("b1")])
        assert engine.ask(primed, "a2")


class TestCacheBehaviour:
    def test_models_are_memoized(self):
        rb = parse_program("p :- q[add: r]. q :- r.")
        engine = PerfectModelEngine(rb)
        engine.ask(Database(), "p")
        first = engine.stats.models_computed
        engine.ask(Database(), "p")
        assert engine.stats.models_computed == first
        assert engine.stats.cache_hits > 0

    def test_clear_cache(self):
        rb = parse_program("p :- q.")
        engine = PerfectModelEngine(rb)
        engine.model(Database())
        assert engine.cached_databases == 1
        engine.clear_cache()
        assert engine.cached_databases == 0

    def test_max_databases_guard(self):
        from repro.library import hamiltonian_rulebase, graph_db

        engine = PerfectModelEngine(hamiltonian_rulebase(), max_databases=2)
        nodes = ["a", "b", "c", "d"]
        edges = [(x, y) for x in nodes for y in nodes if x != y]
        with pytest.raises(EvaluationError):
            engine.ask(graph_db(nodes, edges), "yes")

    def test_memoize_disabled_still_correct(self):
        from repro.library import parity_db, parity_rulebase

        engine = PerfectModelEngine(parity_rulebase(), memoize=False)
        assert engine.ask(parity_db(["x", "y"]), "even")
        assert engine.cached_databases == 0
