"""Unit tests for repro.core.database."""

import pytest

from repro.core.database import Database
from repro.core.errors import ValidationError
from repro.core.terms import Constant, Variable, atom


@pytest.fixture
def graph():
    return Database.from_relations(
        {"node": ["a", "b"], "edge": [("a", "b")]}
    )


class TestConstruction:
    def test_facts_must_be_ground(self):
        with pytest.raises(ValidationError):
            Database([atom("p", "X")])

    def test_from_relations_bare_payloads(self, graph):
        assert atom("node", "a") in graph
        assert atom("edge", "a", "b") in graph
        assert len(graph) == 3

    def test_empty(self):
        assert len(Database()) == 0
        assert not Database().predicates()

    def test_duplicates_collapse(self):
        db = Database([atom("p", "a"), atom("p", "a")])
        assert len(db) == 1


class TestSetBehaviour:
    def test_equality_and_hash(self, graph):
        clone = Database.from_relations({"node": ["b", "a"], "edge": [("a", "b")]})
        assert graph == clone
        assert hash(graph) == hash(clone)

    def test_subset_ordering(self, graph):
        smaller = Database.from_relations({"node": ["a"]})
        assert smaller < graph
        assert smaller <= graph
        assert not graph <= smaller

    def test_iteration_yields_atoms(self, graph):
        assert set(graph) == graph.facts


class TestFunctionalUpdates:
    def test_with_facts_adds(self, graph):
        extended = graph.with_facts(atom("node", "c"))
        assert atom("node", "c") in extended
        assert atom("node", "c") not in graph

    def test_with_facts_noop_returns_same_object(self, graph):
        assert graph.with_facts(atom("node", "a")) is graph

    def test_union(self, graph):
        other = Database.from_relations({"node": ["c"]})
        assert len(graph.union(other)) == 4

    def test_union_subset_returns_self(self, graph):
        sub = Database.from_relations({"node": ["a"]})
        assert graph.union(sub) is graph

    def test_without_predicate(self, graph):
        assert graph.without_predicate("edge").predicates() == {"node"}

    def test_without_missing_predicate_is_self(self, graph):
        assert graph.without_predicate("ghost") is graph


class TestInspection:
    def test_relation(self, graph):
        assert graph.relation("edge") == {(Constant("a"), Constant("b"))}

    def test_rows(self, graph):
        assert graph.rows("edge") == {("a", "b")}
        assert graph.rows("node") == {("a",), ("b",)}
        assert graph.rows("ghost") == set()

    def test_constants(self, graph):
        assert {c.value for c in graph.constants()} == {"a", "b"}

    def test_matches_binds_variables(self, graph):
        results = list(graph.matches(atom("edge", "X", "Y")))
        assert len(results) == 1
        assert results[0][Variable("X")] == Constant("a")

    def test_matches_respects_binding(self, graph):
        binding = {Variable("X"): Constant("b")}
        assert list(graph.matches(atom("edge", "X", "Y"), binding)) == []
        assert graph.has_match(atom("node", "X"), binding)

    def test_matches_repeated_variables(self):
        db = Database.from_relations({"e": [("a", "a"), ("a", "b")]})
        results = list(db.matches(atom("e", "X", "X")))
        assert len(results) == 1

    def test_rename_permutation(self, graph):
        renamed = graph.rename({"a": "b", "b": "a"})
        assert atom("edge", "b", "a") in renamed
        assert atom("node", "a") in renamed  # b renamed to a

    def test_rename_partial_mapping(self, graph):
        renamed = graph.rename({"a": "z"})
        assert atom("edge", "z", "b") in renamed

    def test_str_is_sorted_facts(self, graph):
        lines = str(graph).splitlines()
        assert lines == sorted(lines)
        assert all(line.endswith(".") for line in lines)
