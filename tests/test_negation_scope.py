"""Regression tests: which variables are local to a negated premise?

A variable is quantified *inside* a negation only when it occurs in
exactly one negated premise and nowhere else in the rule.  Variables
shared with the head (``ok(N, C) :- ~clash(N, C)``), with another
premise, or with a second negation are ordinary rule variables that
Definition 3 grounds over the domain before the negation is tested.

This distinction produced a real bug (all-engines disagreement on the
graph-coloring rulebase), so every case is pinned here on all engines.
"""

import pytest

from repro.core.database import Database
from repro.core.parser import parse_program, parse_rule
from repro.core.terms import Variable, atom
from repro.engine.body import nonlocal_variables
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine

ENGINES = [PerfectModelEngine, LinearStratifiedProver, TopDownEngine]


class TestNonlocalVariables:
    def names(self, text):
        return {var.name for var in nonlocal_variables(parse_rule(text))}

    def test_truly_local_variable(self):
        # Y occurs only inside the negation: local.
        assert self.names("p(X) :- q(X), ~r(Y).") == {"X"}

    def test_head_variable_is_not_local(self):
        assert self.names("ok(N, C) :- ~clash(N, C).") == {"N", "C"}

    def test_variable_shared_with_positive_is_not_local(self):
        assert self.names("p(X) :- q(Y), ~r(Y).") == {"X", "Y"}

    def test_variable_shared_between_negations_is_not_local(self):
        assert self.names("p :- ~q(Y), ~r(Y).") == {"Y"}

    def test_variable_shared_with_hypothetical_is_not_local(self):
        assert self.names("p :- q[add: m(Y)], ~r(Y).") == {"Y"}

    def test_repeated_in_same_negation_is_local(self):
        # Y twice inside ONE negated premise, nowhere else: still local.
        assert self.names("p(X) :- q(X), ~r(Y, Y).") == {"X"}


@pytest.mark.parametrize("engine_class", ENGINES)
class TestSemantics:
    def test_head_variable_under_negation(self, engine_class):
        # ok(N, C) holds for each (N, C) pair without a clash — NOT
        # "ok of everything iff no clash exists anywhere".
        rules = parse_program(
            """
            ok(N, C) :- ~clash(N, C).
            clash(N, C) :- edge(N, M), col(M, C).
            """
        )
        engine = engine_class(rules)
        db = Database.from_relations(
            {
                "edge": [("a", "b")],
                "col": [("b", "red")],
                "dom": ["green"],
            }
        )
        assert not engine.ask(db, "ok(a, red)")  # a's neighbour is red
        assert engine.ask(db, "ok(a, green)")
        assert engine.ask(db, "ok(b, red)")  # b has no outgoing edge

    def test_truly_local_variable_is_not_exists(self, engine_class):
        rules = parse_program("lonely(X) :- node(X), ~edge(X, Y).")
        engine = engine_class(rules)
        db = Database.from_relations(
            {"node": ["a", "b"], "edge": [("a", "b")]}
        )
        assert engine.answers(db, "lonely(X)") == {("b",)}

    def test_shared_variable_across_negations(self, engine_class):
        # p(Y) :- d(Y), ~q(Y), ~r(Y): one Y, outside both negations.
        rules = parse_program("p(Y) :- d(Y), ~q(Y), ~r(Y).")
        engine = engine_class(rules)
        db = Database.from_relations(
            {"d": ["a", "b", "c"], "q": ["a"], "r": ["b"]}
        )
        assert engine.answers(db, "p(Y)") == {("c",)}

    def test_negation_only_rule_with_head_variable(self, engine_class):
        # No positive premises at all: the head variable still ranges
        # over the whole domain, tested pointwise.
        rules = parse_program("fresh(X) :- ~used(X).")
        engine = engine_class(rules)
        db = Database.from_relations({"used": ["a"], "d": ["b"]})
        assert engine.ask(db, "fresh(b)")
        assert not engine.ask(db, "fresh(a)")

    def test_coloring_rulebase_agreement(self, engine_class):
        from repro.library import coloring_db, coloring_rulebase, is_colorable

        rulebase = coloring_rulebase()
        engine = engine_class(rulebase)
        cases = [
            (["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")], ["red", "green"]),
            (
                ["a", "b", "c"],
                [("a", "b"), ("b", "c"), ("a", "c")],
                ["red", "green", "blue"],
            ),
            (["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], ["red", "green"]),
        ]
        for nodes, edges, colors in cases:
            db = coloring_db(nodes, edges, colors)
            assert engine.ask(db, "yes") is is_colorable(nodes, edges, colors)


class TestProofsRespectScope:
    def test_explain_head_variable_negation(self):
        from repro.engine.proofs import Explainer, verify_proof

        rules = parse_program(
            """
            ok(N, C) :- ~clash(N, C).
            clash(N, C) :- edge(N, M), col(M, C).
            """
        )
        db = Database.from_relations(
            {"edge": [("a", "b")], "col": [("b", "red")], "dom": ["green"]}
        )
        explainer = Explainer(rules)
        proof = explainer.explain(db, "ok(a, green)")
        assert proof is not None
        assert verify_proof(rules, proof)
        assert explainer.explain(db, "ok(a, red)") is None
