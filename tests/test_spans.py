"""Source spans: the lexer/parser thread positions into every AST node."""

from repro.core.ast import Negated, Positive, Rule
from repro.core.parser import parse_program, parse_rule
from repro.core.spans import Span
from repro.core.terms import atom


class TestSpanType:
    def test_point_span_defaults_to_one_character(self):
        span = Span(3, 7)
        assert (span.end_line, span.end_column) == (3, 8)

    def test_location_without_source(self):
        assert Span(2, 5).location == "2:5"

    def test_location_with_source(self):
        assert Span(2, 5, source="prog.dl").location == "prog.dl:2:5"

    def test_str_is_location(self):
        assert str(Span(1, 1, source="f.dl")) == "f.dl:1:1"

    def test_merge_covers_both(self):
        merged = Span(1, 4, 1, 9).merge(Span(2, 1, 2, 6))
        assert (merged.line, merged.column) == (1, 4)
        assert (merged.end_line, merged.end_column) == (2, 6)


class TestParserSpans:
    def test_rule_span_starts_at_head(self):
        rule = parse_rule("p(X) :- q(X).")
        assert rule.span is not None
        assert (rule.span.line, rule.span.column) == (1, 1)

    def test_second_rule_has_second_line(self):
        rb = parse_program("p(X) :- q(X).\nr(Y) :- s(Y).")
        assert rb.rules[1].span.line == 2

    def test_filename_is_threaded(self):
        rb = parse_program("p(X) :- q(X).", filename="prog.dl")
        assert rb.rules[0].span.source == "prog.dl"
        assert rb.rules[0].span.location == "prog.dl:1:1"

    def test_premise_spans_point_at_premises(self):
        rule = parse_rule("p(X) :- q(X), ~r(X).")
        positive, negated = rule.body
        assert positive.span.column == 9
        assert negated.span.column == 15

    def test_atom_spans(self):
        rule = parse_rule("p(X) :- q(X).")
        assert rule.head.span.column == 1
        assert rule.body[0].atom.span.column == 9

    def test_hypothetical_span_covers_brackets(self):
        rule = parse_rule("p(X) :- d(X), q(X)[add: r(X)].")
        hyp = rule.body[1]
        assert hyp.span.column == 15
        assert hyp.span.end_column > hyp.span.column

    def test_rule_end_column_covers_period_atom(self):
        rule = parse_rule("p(X) :- q(X).")
        assert rule.span.end_column >= 13


class TestSpansAreMetadata:
    """Spans must never affect equality, hashing, or substitution."""

    def test_parsed_and_programmatic_rules_compare_equal(self):
        parsed = parse_rule("p(X) :- q(X).")
        built = Rule(atom("p", "X"), (Positive(atom("q", "X")),))
        assert parsed == built
        assert hash(parsed) == hash(built)

    def test_premises_interoperate_in_sets(self):
        parsed = parse_rule("p(X) :- ~q(X).").body[0]
        built = Negated(atom("q", "X"))
        assert {parsed} == {built}

    def test_substitute_preserves_span(self):
        rule = parse_rule("p(X) :- q(X).", filename="f.dl")
        grounded = rule.substitute({})
        assert grounded.span == rule.span
        assert grounded.body[0].span is not None

    def test_repr_omits_span(self):
        rule = parse_rule("p(X) :- q(X).")
        assert "span" not in repr(rule)
