"""Differential evaluation cross-checks (PR 3).

The semi-naive strata, lattice model reuse, and indexed joins of the
model engine are all meant to be *semantics-neutral*: every strategy
and every reuse setting must produce exactly the naive reference model.
These tests pin that on every shipped library rulebase, on random
add-only rulebases, and on the metric counters (traced and untraced
runs must count identically).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.monotone import is_add_monotone, monotone_layer_prefix
from repro.analysis.stratify import negation_strata
from repro.core.ast import Hypothetical, Negated, Positive, Rule, Rulebase
from repro.core.database import Database
from repro.core.parser import parse_program
from repro.core.terms import Atom, Constant, Variable, atom
from repro.engine.model import PerfectModelEngine
from repro.library.chains import (
    addition_chain_rulebase,
    order_db,
    order_iteration_rulebase,
)
from repro.library.coloring import coloring_db, coloring_rulebase
from repro.library.hamiltonian import (
    graph_db,
    hamiltonian_rulebase,
    has_hamiltonian_path,
)
from repro.library.parity import parity_db, parity_rulebase
from repro.library.university import graduation_db, graduation_rulebase
from repro.obs.trace import Tracer


def _engines(rulebase, **kwargs):
    """The three configurations whose models must coincide."""
    return {
        "naive": PerfectModelEngine(rulebase, strategy="naive", **kwargs),
        "seminaive": PerfectModelEngine(
            rulebase, strategy="seminaive", reuse_models=False, **kwargs
        ),
        "seeded": PerfectModelEngine(
            rulebase, strategy="seminaive", reuse_models=True, **kwargs
        ),
    }


LIBRARY_WORKLOADS = [
    pytest.param(parity_rulebase(), parity_db(["x1"]), id="parity-1"),
    pytest.param(parity_rulebase(), parity_db(["x1", "x2"]), id="parity-2"),
    pytest.param(
        parity_rulebase(), parity_db(["x1", "x2", "x3"]), id="parity-3"
    ),
    pytest.param(
        hamiltonian_rulebase(),
        graph_db(["n1", "n2", "n3"], [("n1", "n2"), ("n2", "n3")]),
        id="hamiltonian-path",
    ),
    pytest.param(
        hamiltonian_rulebase(),
        graph_db(["n1", "n2", "n3"], [("n1", "n2")]),
        id="hamiltonian-no-path",
    ),
    pytest.param(graduation_rulebase(), graduation_db(), id="graduation"),
    pytest.param(addition_chain_rulebase(3), Database(), id="addition-chain"),
    pytest.param(
        order_iteration_rulebase(), order_db(3), id="order-iteration"
    ),
    pytest.param(
        coloring_rulebase(),
        coloring_db(["u", "v"], [("u", "v")], ["red", "blue"]),
        id="coloring",
    ),
]


class TestLibraryCrossCheck:
    """Naive, semi-naive, and seeded evaluation agree on every shipped
    rulebase (the acceptance criterion's reference-model assertion)."""

    @pytest.mark.parametrize("rulebase, db", LIBRARY_WORKLOADS)
    def test_models_identical(self, rulebase, db):
        engines = _engines(rulebase)
        models = {name: engine.model(db) for name, engine in engines.items()}
        assert models["seminaive"] == models["naive"]
        assert models["seeded"] == models["naive"]

    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_parity_answers_match_cardinality(self, size):
        rulebase = parity_rulebase()
        db = parity_db([f"x{index}" for index in range(size)])
        for name, engine in _engines(rulebase).items():
            assert engine.ask(db, "even") is (size % 2 == 0), name

    def test_hamiltonian_answers_match_oracle(self):
        rulebase = hamiltonian_rulebase()
        nodes = ["n1", "n2", "n3", "n4"]
        for edges in [
            [("n1", "n2"), ("n2", "n3"), ("n3", "n4")],
            [("n1", "n2"), ("n3", "n4")],
            [("n1", "n2"), ("n2", "n3"), ("n3", "n4"), ("n4", "n1")],
        ]:
            expected = has_hamiltonian_path(nodes, edges)
            db = graph_db(nodes, edges)
            for name, engine in _engines(rulebase).items():
                assert engine.ask(db, "yes") is expected, (name, edges)


def _random_rulebase(rng: random.Random, negation: bool = False) -> Rulebase:
    """A random add-only hypothetical rulebase.

    IDB predicates p/1, q/1, r/2 defined by rules whose bodies mix
    positive premises over IDB/EDB predicates and hypothetical premises
    whose additions touch the EDB predicate e/1 — the fragment where
    lattice reuse is always on, so seeding gets exercised hard.  With
    ``negation=True`` bodies may also carry negated premises (samples
    whose negation happens to be recursive are skipped by callers).
    """
    variables = [Variable("X"), Variable("Y")]
    constants = [Constant("c0"), Constant("c1"), Constant("c2")]
    idb = [("p", 1), ("q", 1), ("r", 2)]
    edb = [("e", 1), ("g", 2)]

    def random_term():
        return rng.choice(variables + constants)

    def random_atom(candidates):
        predicate, arity = rng.choice(candidates)
        return Atom(predicate, tuple(random_term() for _ in range(arity)))

    rules = []
    for _ in range(rng.randint(3, 6)):
        predicate, arity = rng.choice(idb)
        head = Atom(predicate, tuple(random_term() for _ in range(arity)))
        body = []
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if negation and roll < 0.2:
                body.append(Negated(random_atom(idb + edb)))
            elif roll < 0.35:
                goal = random_atom(idb + edb)
                addition = Atom("e", (random_term(),))
                body.append(Hypothetical(goal, (addition,)))
            else:
                body.append(Positive(random_atom(idb + edb)))
        rules.append(Rule(head, tuple(body)))
    return Rulebase(rules)


def _random_database(rng: random.Random) -> Database:
    constants = ["c0", "c1", "c2"]
    facts = []
    for _ in range(rng.randint(2, 6)):
        if rng.random() < 0.5:
            facts.append(atom("e", rng.choice(constants)))
        else:
            facts.append(
                atom("g", rng.choice(constants), rng.choice(constants))
            )
    return Database(facts)


class TestRandomizedCrossCheck:
    """Differential + seeded evaluation equals the naive reference on
    random add-only rulebases (monotone fragment, reuse always fires)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_add_only_rulebases(self, seed):
        rng = random.Random(seed)
        rulebase = _random_rulebase(rng)
        db = _random_database(rng)
        assert is_add_monotone(rulebase)
        engines = _engines(rulebase, max_databases=50_000)
        models = {name: engine.model(db) for name, engine in engines.items()}
        assert models["seminaive"] == models["naive"], str(rulebase)
        assert models["seeded"] == models["naive"], str(rulebase)
        seeded = engines["seeded"].metrics
        assert (
            seeded.counter("model.models_seeded").value
            + seeded.counter("model.models_fresh").value
            == seeded.counter("model.models_computed").value
        )


class TestSeedingMetrics:
    """The new ``model.*`` reuse metrics mean what the docs say."""

    def test_parity_lattice_counts_seeded_models(self):
        # Example 6's first rule-bearing stratum (select) is negation
        # guarded, so the monotone prefix stops at the rule-less EDB
        # strata: children enter the incremental path (seeded models
        # counted) but can inherit no derived atoms.
        rulebase = parity_rulebase()
        prefix = monotone_layer_prefix(negation_strata_rules(rulebase))
        assert all(
            not rules for rules in negation_strata_rules(rulebase)[:prefix]
        )
        engine = PerfectModelEngine(rulebase)
        assert engine.ask(parity_db(["x1", "x2"]), "even")
        metrics = engine.metrics
        assert metrics.counter("model.models_seeded").value > 0
        assert metrics.counter("model.models_fresh").value > 0
        histogram = metrics.histogram("model.atoms_seeded")
        assert histogram.count > 0
        assert histogram.total == 0

    def test_monotone_lattice_inherits_derived_atoms(self):
        # Example 2's rulebase is negation-free: children really reuse
        # the parent's ``grad`` stratum.
        engine = PerfectModelEngine(graduation_rulebase())
        assert engine.answers(graduation_db(), "within_one(S)") == {
            ("tony",),
            ("sue",),
        }
        assert engine.metrics.histogram("model.atoms_seeded").total > 0

    def test_incremental_recomputation_seeds_from_cache(self):
        rules = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        base = Database.from_relations(
            {"edge": [("a", "b"), ("b", "c"), ("c", "d")]}
        )
        engine = PerfectModelEngine(rules)
        engine.model(base)
        grown = base.with_facts(atom("edge", "d", "e"))
        incremental = engine.model(grown)
        metrics = engine.metrics
        assert metrics.counter("model.models_seeded").value == 1
        assert metrics.histogram("model.atoms_seeded").total > 0
        assert incremental == PerfectModelEngine(rules).model(grown)

    def test_seminaive_fires_fewer_rules_than_naive(self):
        rulebase = parity_rulebase()
        db = parity_db(["x1", "x2", "x3"])
        firings = {}
        for name, engine in _engines(rulebase).items():
            engine.ask(db, "even")
            firings[name] = engine.metrics.counter("model.rule_firings").value
        assert firings["seminaive"] < firings["naive"]
        assert firings["seeded"] <= firings["seminaive"]

    def test_reuse_disabled_counts_everything_fresh(self):
        engine = PerfectModelEngine(parity_rulebase(), reuse_models=False)
        engine.ask(parity_db(["x1", "x2"]), "even")
        assert engine.metrics.counter("model.models_seeded").value == 0
        assert engine.metrics.counter("model.models_fresh").value > 0

    def test_index_probes_counted(self):
        engine = PerfectModelEngine(graduation_rulebase())
        engine.answers(graduation_db(), "within_one(S)")
        assert engine.metrics.counter("interp.index_probes").value > 0


def negation_strata_rules(rulebase):
    """Per-stratum rule partition, the input monotone_layer_prefix wants."""
    return [
        [
            item
            for predicate in layer
            for item in rulebase.definition(predicate)
        ]
        for layer in negation_strata(rulebase)
    ]


class TestTracedCounterParity:
    """Tracing must be observational only: the same evaluation traced
    and untraced produces identical ``model.*`` counters."""

    @pytest.mark.parametrize(
        "rulebase, db, query",
        [
            pytest.param(
                parity_rulebase(), parity_db(["x1", "x2"]), "even", id="parity"
            ),
            pytest.param(
                graduation_rulebase(),
                graduation_db(),
                "within_one(tony)",
                id="graduation",
            ),
            pytest.param(
                hamiltonian_rulebase(),
                graph_db(["n1", "n2", "n3"], [("n1", "n2"), ("n2", "n3")]),
                "yes",
                id="hamiltonian",
            ),
        ],
    )
    def test_model_counters_identical(self, rulebase, db, query):
        untraced = PerfectModelEngine(rulebase)
        untraced.ask(db, query)
        traced = PerfectModelEngine(rulebase, tracer=Tracer())
        traced.ask(db, query)
        untraced_counts = {
            name: value
            for name, value in untraced.metrics.snapshot().items()
            if name.startswith(("model.", "interp."))
        }
        traced_counts = {
            name: value
            for name, value in traced.metrics.snapshot().items()
            if name.startswith(("model.", "interp."))
        }
        assert untraced_counts == traced_counts
        assert untraced_counts["model.rule_firings"] > 0


class TestStrategyValidation:
    def test_unknown_strategy_rejected(self):
        from repro.core.errors import EvaluationError

        with pytest.raises(EvaluationError):
            PerfectModelEngine(parity_rulebase(), strategy="magic")

    def test_unknown_demand_mode_rejected(self):
        from repro.core.errors import EvaluationError

        with pytest.raises(EvaluationError):
            PerfectModelEngine(parity_rulebase(), demand="always")


def _all_free_patterns(rulebase):
    """One all-free query pattern per defined predicate."""
    patterns = []
    for predicate in sorted(rulebase.defined_predicates()):
        arity = rulebase.arity(predicate) or 0
        patterns.append(
            Atom(
                predicate,
                tuple(Variable(f"V{index}") for index in range(arity)),
            )
        )
    return patterns


class TestDemandParity:
    """Demand-on evaluation is answer-identical to demand-off — on
    shipped rulebases, on random add-only programs, and on random
    negation-bearing programs.  Rejections degrade through the counted
    fallback, so parity must hold unconditionally."""

    @pytest.mark.parametrize("rulebase, db", LIBRARY_WORKLOADS)
    def test_library_answers_identical(self, rulebase, db):
        off = PerfectModelEngine(rulebase)
        on = PerfectModelEngine(rulebase, demand="on")
        for pattern in _all_free_patterns(rulebase):
            expected = off.answers(db, pattern)
            assert on.answers(db, pattern) == expected, str(pattern)
            assert on.ask(db, pattern) is off.ask(db, pattern)
            # Ground probes: every answer, plus one guaranteed miss.
            for row in sorted(expected, key=str)[:3]:
                ground = Atom(
                    pattern.predicate, tuple(Constant(value) for value in row)
                )
                assert on.ask(db, ground) is True, str(ground)
            if pattern.args:
                miss = Atom(
                    pattern.predicate,
                    (Constant("no_such"),) * len(pattern.args),
                )
                assert on.ask(db, miss) is off.ask(db, miss)

    @pytest.mark.parametrize("rulebase, db", LIBRARY_WORKLOADS)
    def test_library_counters_sound(self, rulebase, db):
        engine = PerfectModelEngine(rulebase, demand="on")
        for pattern in _all_free_patterns(rulebase):
            engine.answers(db, pattern)
        snapshot = engine.metrics.snapshot()
        fallbacks = snapshot.get("engine.demand_fallbacks", 0)
        rewritten = snapshot.get("demand.rules_rewritten", 0)
        # Every query either rewrote (guarded rules counted) or fell
        # back (counted); nothing disappears silently.
        assert fallbacks + rewritten > 0
        if rewritten:
            assert snapshot.get("demand.magic_facts", 0) > 0

    @pytest.mark.parametrize("seed", range(20))
    def test_random_add_only_parity(self, seed):
        rng = random.Random(seed)
        rulebase = _random_rulebase(rng)
        db = _random_database(rng)
        off = PerfectModelEngine(rulebase, max_databases=50_000)
        on = PerfectModelEngine(
            rulebase, demand="on", max_databases=50_000
        )
        for pattern in _all_free_patterns(rulebase):
            assert on.answers(db, pattern) == off.answers(db, pattern), (
                str(rulebase),
                str(pattern),
            )
        for goal in [
            atom("p", "c0"),
            atom("q", "c2"),
            atom("r", "c0", "c1"),
        ]:
            if rulebase.definition(goal.predicate):
                assert on.ask(db, goal) is off.ask(db, goal), (
                    str(rulebase),
                    str(goal),
                )

    @pytest.mark.parametrize("seed", range(20))
    def test_random_negation_parity(self, seed):
        from repro.core.errors import StratificationError

        rng = random.Random(1000 + seed)
        rulebase = _random_rulebase(rng, negation=True)
        db = _random_database(rng)
        try:
            off = PerfectModelEngine(rulebase, max_databases=50_000)
        except StratificationError:
            pytest.skip("random sample is not stratified")
        on = PerfectModelEngine(rulebase, demand="on", max_databases=50_000)
        for pattern in _all_free_patterns(rulebase):
            assert on.answers(db, pattern) == off.answers(db, pattern), (
                str(rulebase),
                str(pattern),
            )
