"""Tests for the span tracer (repro.obs.trace)."""

import itertools

from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Tracer, walk


def fake_clock(step: int = 100):
    """A deterministic nanosecond clock advancing ``step`` per call."""
    ticker = itertools.count(0, step)
    return lambda: next(ticker)


class TestTracer:
    def test_nesting(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("goal", "p(a)"):
            with tracer.span("rule", "p"):
                pass
            tracer.event("plan", "q r")
        root = tracer.finish()
        (goal,) = root.children
        assert goal.kind == "goal" and goal.label == "p(a)"
        rule, plan = goal.children
        assert rule.is_span and rule.kind == "rule"
        assert not plan.is_span and plan.kind == "plan"

    def test_deterministic_clock(self):
        tracer = Tracer(clock=fake_clock(100))
        with tracer.span("a"):
            pass
        root = tracer.finish()
        (span,) = root.children
        assert span.start_ns == 100
        assert span.duration_ns == 100

    def test_finish_closes_leaked_spans(self):
        tracer = Tracer(clock=fake_clock())
        context = tracer.span("goal", "leaked")
        context.__enter__()  # never exited — e.g. abandoned generator
        root = tracer.finish()
        assert root.end_ns is not None
        assert root.children[0].end_ns is not None

    def test_exit_pops_past_leaked_children(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer"):
            tracer.span("inner").__enter__()  # leaked
        root = tracer.finish()
        (outer,) = root.children
        (inner,) = outer.children
        assert inner.end_ns == outer.end_ns

    def test_walk_depths(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("e")
        nodes = list(walk(tracer.finish()))
        assert [(depth, node.kind) for depth, node in nodes] == [
            (0, "trace"),
            (1, "a"),
            (2, "b"),
            (3, "e"),
        ]

    def test_current_property(self):
        tracer = Tracer(clock=fake_clock())
        assert tracer.current is tracer.root
        with tracer.span("a") as span:
            assert tracer.current is span


class TestNullTracer:
    def test_disabled_and_allocation_free(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(clock=fake_clock()).enabled is True
        # span() returns one shared context manager — no allocation.
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")
        assert NULL_TRACER.span("x") is NULL_SPAN

    def test_noop_protocol(self):
        with NULL_TRACER.span("goal", "p"):
            NULL_TRACER.event("plan")
        assert NULL_TRACER.finish() is None

    def test_slots(self):
        assert not hasattr(NullTracer(), "__dict__")


class TestOverheadParity:
    """Counters are tracer-independent: a traced run and an untraced
    run of the same workload must produce identical metric deltas (the
    ISSUE's disabled-overhead guarantee, checked on counters)."""

    RULES = """
    grad(S) :- take(S, cs452), take(S, cs312).
    elig(S) :- grad(S)[add: take(S, cs312)].
    """

    def _run(self, engine_cls, tracer):
        rulebase = parse_program(self.RULES)
        db = Database.from_relations({"take": [("tony", "cs452")]})
        engine = engine_cls(rulebase, tracer=tracer)
        engine.ask(db, "elig(tony)")
        return engine.metrics.snapshot()

    def test_prove_counters_identical(self):
        assert self._run(LinearStratifiedProver, None) == self._run(
            LinearStratifiedProver, Tracer()
        )

    def test_topdown_counters_identical(self):
        assert self._run(TopDownEngine, None) == self._run(
            TopDownEngine, Tracer()
        )

    def test_traced_run_produced_spans(self):
        tracer = Tracer()
        self_rules = parse_program(self.RULES)
        prover = LinearStratifiedProver(self_rules, tracer=tracer)
        prover.ask(Database.from_relations({"take": [("tony", "cs452")]}), "elig(tony)")
        kinds = {node.kind for _, node in walk(tracer.finish())}
        assert "goal" in kinds and "hypothesis" in kinds
