"""Compiled join kernels (repro.engine.kernels): parity, fallback, DX.

The contract pinned here (docs/PERFORMANCE.md): with ``compile="on"``
the model engine produces the identical perfect model with identical
``model.rule_firings`` / rounds / derived-atom / negation counters as
``compile="off"`` — generated code changes enumeration cost, never the
head multiset.  Rules outside the compilable fragment fall back per
firing (counted, never wrong), and a failed differential self-check
degrades the whole engine to the interpreted naive path, visibly.
"""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.budget import Budget
from repro.engine.kernels import KernelProgram, compile_mode
from repro.engine.model import PerfectModelEngine
from repro.library import (
    graduation_db,
    graduation_rulebase,
    hamiltonian_rulebase,
    parity_db,
    parity_rulebase,
)
from repro.testing import failpoints

PARITY_COUNTERS = (
    "model.models_computed",
    "model.models_seeded",
    "model.rule_rounds",
    "model.rule_firings",
    "model.atoms_derived",
    "model.negation_tests",
)


def _assert_parity(rulebase, db, **options):
    off = PerfectModelEngine(rulebase, compile="off", **options)
    on = PerfectModelEngine(rulebase, compile="on", **options)
    assert off.model(db) == on.model(db)
    for name in PARITY_COUNTERS:
        assert (
            off.metrics.counter(name).value == on.metrics.counter(name).value
        ), name
    return off, on


# ----------------------------------------------------------------------
# Counter parity across the language
# ----------------------------------------------------------------------


def test_parity_plain_datalog():
    rulebase = parse_program(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        """
    )
    db = Database(
        [atom("edge", "a", "b"), atom("edge", "b", "c"), atom("edge", "c", "a")]
    )
    _, on = _assert_parity(rulebase, db)
    assert on.metrics.counter("kernel.fires").value > 0
    assert on.metrics.counter("kernel.fallbacks").value == 0


def test_parity_negation_and_constants():
    rulebase = parse_program(
        """
        node(X) :- edge(X, Y).
        node(Y) :- edge(X, Y).
        special(a).
        isolated(X) :- node(X), not reaches_a(X).
        reaches_a(X) :- edge(X, a).
        reaches_a(X) :- edge(X, Y), reaches_a(Y).
        from_a(Y) :- edge(a, Y).
        """
    )
    db = Database(
        [atom("edge", "a", "b"), atom("edge", "c", "a"), atom("edge", "d", "e")]
    )
    _assert_parity(rulebase, db)


def test_parity_repeated_variables_and_zero_ary():
    rulebase = parse_program(
        """
        loop(X) :- edge(X, X).
        any_loop :- loop(X).
        quiet :- not any_loop.
        """
    )
    looped = Database([atom("edge", "a", "a"), atom("edge", "a", "b")])
    plain = Database([atom("edge", "a", "b")])
    for db in (looped, plain):
        _assert_parity(rulebase, db)


def test_parity_hypothetical_lattice():
    _assert_parity(
        parity_rulebase(), parity_db([f"x{i}" for i in range(5)])
    )


def test_parity_graduation():
    _assert_parity(graduation_rulebase(), graduation_db())


def test_parity_under_naive_strategy_and_no_reuse():
    rulebase = parity_rulebase()
    db = parity_db(["x0", "x1", "x2"])
    _assert_parity(rulebase, db, strategy="naive")
    _assert_parity(rulebase, db, reuse_models=False)


def test_hypothesis_expansions_memoized_not_inflated():
    """Compiled hypothesis decisions are memoized per (premise, db,
    grounding): the compiled engine expands each distinct instance at
    most once, so its count never exceeds the interpreted engine's."""
    rulebase = parity_rulebase()
    db = parity_db([f"x{i}" for i in range(5)])
    off, on = _assert_parity(rulebase, db)
    expansions = "model.hypothesis_expansions"
    assert 0 < on.metrics.counter(expansions).value
    assert (
        on.metrics.counter(expansions).value
        <= off.metrics.counter(expansions).value
    )


# ----------------------------------------------------------------------
# The compile= knob
# ----------------------------------------------------------------------


def test_compile_mode_normalization():
    assert compile_mode(True) == "on"
    assert compile_mode(False) == "off"
    assert compile_mode(None) == "auto"
    for value in ("auto", "on", "off"):
        assert compile_mode(value) == value
    with pytest.raises(EvaluationError):
        compile_mode("fast")
    with pytest.raises(EvaluationError):
        PerfectModelEngine(parity_rulebase(), compile="fast")


def test_compile_off_runs_no_generated_code():
    engine = PerfectModelEngine(parity_rulebase(), compile="off")
    assert engine.ask(parity_db(["x0", "x1"]), "even")
    assert engine.metrics.counter("kernel.compiled").value == 0
    assert engine.metrics.counter("kernel.fires").value == 0


def test_compile_auto_is_on_for_the_model_engine():
    engine = PerfectModelEngine(parity_rulebase())  # compile defaults to auto
    assert engine.ask(parity_db(["x0", "x1"]), "even")
    assert engine.metrics.counter("kernel.fires").value > 0


# ----------------------------------------------------------------------
# Fallback inside and outside the compilable fragment
# ----------------------------------------------------------------------


def test_uncompilable_rules_fall_back_per_firing():
    """fire() returns None (counted) instead of guessing: a rule with
    a hypothetical premise cannot compile without an engine hypothesis
    hook, and a deletion rule cannot compile at all."""
    from repro.engine.interpretation import Interpretation

    program = KernelProgram()
    run = program.run(interp=Interpretation(), domain=[])
    hyp_rule = next(iter(parse_program("p(X) :- q(X)[add: r(X)].")))
    assert run.fire(hyp_rule, None, None) is None
    assert program.fallbacks.value == 1
    del_rule = next(iter(parse_program("p(X) :- q(X)[del: r(X)].")))
    assert run.fire(del_rule, None, None) is None
    assert program.fallbacks.value == 2
    # A compilable rule on the same run still fires.
    plain = next(iter(parse_program("p(X) :- q(X).")))
    assert run.fire(plain, None, None) is not None
    assert program.fires.value == 1


def test_generated_source_preview():
    rulebase = parse_program("tc(X, Z) :- edge(X, Y), tc(Y, Z).")
    program = KernelProgram()
    rule = next(iter(rulebase))
    source = program.preview(rule)
    assert source is not None and "def kernel(ctx):" in source
    assert program.sources_for(rule) == [source]
    # Uncompilable rules preview to None instead of raising.
    fragile = next(iter(parse_program("f(X) :- p(X)[del: q(X)].")))
    assert program.preview(fragile) is None


# ----------------------------------------------------------------------
# Degraded engine (one-shot naive fallback) is visible, not silent
# ----------------------------------------------------------------------


def _ham_db():
    return Database(
        [atom("edge", "a", "b"), atom("edge", "b", "c"), atom("node", "a"),
         atom("node", "b"), atom("node", "c")]
    )


class TestDegradedEngine:
    def test_fallback_marks_engine_degraded_and_disables_kernels(self):
        engine = PerfectModelEngine(hamiltonian_rulebase())
        assert not engine.degraded
        with failpoints.armed("model.invariant", kind="invariant"):
            assert engine.ask(_ham_db(), "yes", budget=Budget()) is True
        assert engine.degraded
        assert engine._kernel_program is None

    def test_degraded_queries_counted_and_diagnosed_once(self):
        engine = PerfectModelEngine(hamiltonian_rulebase())
        with failpoints.armed("model.invariant", kind="invariant"):
            engine.ask(_ham_db(), "yes", budget=Budget())
        counter = engine.metrics.counter("engine.degraded_queries")
        assert counter.value == 0  # the triggering query is not "reuse"
        engine.ask(_ham_db(), "yes")
        engine.ask(_ham_db(), "path(a)")
        assert counter.value == 2
        warnings = [
            d for d in engine.diagnostics if d.code == "engine-degraded"
        ]
        assert len(warnings) == 1
        assert warnings[0].severity == "warning"

    def test_degraded_engine_still_answers_correctly(self):
        db = _ham_db()
        reference = PerfectModelEngine(hamiltonian_rulebase()).answers(
            db, "select(Y)"
        )
        engine = PerfectModelEngine(hamiltonian_rulebase())
        with failpoints.armed("model.invariant", kind="invariant"):
            engine.ask(db, "yes", budget=Budget())
        assert engine.answers(db, "select(Y)") == reference

    def test_healthy_engine_never_reports_degraded(self):
        engine = PerfectModelEngine(hamiltonian_rulebase())
        engine.ask(_ham_db(), "yes")
        assert not engine.degraded
        assert engine.metrics.counter("engine.degraded_queries").value == 0
        assert not any(
            d.code == "engine-degraded" for d in engine.diagnostics
        )
