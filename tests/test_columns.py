"""Columnar relations (repro.core.columns): encoding, COW, isolation.

The properties pinned here are what let compiled kernels trust their
probe structures: encoded relations are immutable images of frozenset
row sets (cached per object, exploiting the database layer's
structural sharing), views layer a private overlay over a shared base
without ever touching it, and ragged arities are filtered rather than
unpacked wrong (docs/PERFORMANCE.md).
"""

from repro.core.columns import ColumnarRelation, ColumnStore, RelationView
from repro.core.database import Database
from repro.core.interning import SymbolTable
from repro.core.terms import atom


def test_columnar_relation_uniform_rows():
    relation = ColumnarRelation([(1, 2), (3, 4), (5, 2)])
    assert relation.uniform == 2
    assert relation.columns is not None
    assert list(relation.columns[0]) == [1, 3, 5]
    assert list(relation.columns[1]) == [2, 4, 2]
    assert relation.rowset == {(1, 2), (3, 4), (5, 2)}
    assert sorted(relation.tuples_for(2)) == [(1, 2), (3, 4), (5, 2)]
    assert relation.tuples_for(3) == ()
    index = relation.index_for(2, 1)
    assert sorted(index[2]) == [(1, 2), (5, 2)]
    assert index[4] == [(3, 4)]


def test_columnar_relation_ragged_rows():
    """Mixed arities: no columns, per-arity filtering still exact."""
    relation = ColumnarRelation([(1,), (2, 3), (4, 5)])
    assert relation.uniform is None
    assert relation.columns is None
    assert relation.tuples_for(1) == [(1,)]
    assert sorted(relation.tuples_for(2)) == [(2, 3), (4, 5)]
    assert relation.index_for(1, 0)[1] == [(1,)]


def test_store_caches_per_frozenset_object():
    store = ColumnStore(SymbolTable())
    rows = frozenset({(atom("e", "a", "b").args), (atom("e", "b", "c").args)})
    first = store.encoded(rows)
    assert store.encoded(rows) is first  # same object, one encode pass
    assert len(first) == 2
    # The empty relation is a shared singleton, not a cache entry.
    assert store.encoded(frozenset()) is store.encoded(None)
    assert len(store) == 1


def test_store_serves_structurally_shared_database_relations():
    """COW children share relation objects; the store encodes once."""
    db = Database([atom("e", "a", "b"), atom("e", "b", "c")])
    child = db.with_facts(atom("other", "x"))
    assert db.relation("e") is child.relation("e")
    store = ColumnStore(SymbolTable())
    assert store.encoded(db.relation("e")) is store.encoded(
        child.relation("e")
    )


def test_view_reads_are_zero_copy_until_a_write():
    base = ColumnarRelation([(1, 2), (3, 4)])
    view = RelationView(base)
    assert view.tuples(2) is base.tuples_for(2)  # shared, no copy
    assert view.index(2, 0) is base.index_for(2, 0)
    base_rows, overlay = view.rowsets()
    assert base_rows == {(1, 2), (3, 4)} and overlay == set()


def test_view_add_privatizes_without_touching_base():
    base = ColumnarRelation([(1, 2), (3, 4)])
    view = RelationView(base)
    shared_tuples = view.tuples(2)
    shared_index = view.index(2, 0)
    view.add((5, 6))
    # The view sees the new row everywhere...
    assert (5, 6) in view.rowsets()[1]
    assert (5, 6) in view.tuples(2)
    assert view.index(2, 0)[5] == [(5, 6)]
    assert view.total(2) == 3
    # ...but the base structures it had handed out are untouched.
    assert shared_tuples == [(1, 2), (3, 4)]
    assert shared_index is base.index_for(2, 0)
    assert 5 not in base.index_for(2, 0)
    assert base.rowset == {(1, 2), (3, 4)}


def test_view_add_appends_to_shared_bucket_cow():
    """A new row landing in an existing probe bucket copies the bucket,
    never extends the base's list in place."""
    base = ColumnarRelation([(1, 2)])
    view = RelationView(base)
    view.index(2, 0)
    view.add((1, 9))
    assert sorted(view.index(2, 0)[1]) == [(1, 2), (1, 9)]
    assert base.index_for(2, 0)[1] == [(1, 2)]
    # Subsequent rows into the now-private bucket append in place.
    view.add((1, 7))
    assert sorted(view.index(2, 0)[1]) == [(1, 2), (1, 7), (1, 9)]
    assert base.index_for(2, 0)[1] == [(1, 2)]


def test_view_overlay_only():
    view = RelationView(None, [(1,), (2,)])
    assert view.rowsets() == (frozenset(), {(1,), (2,)})
    assert sorted(view.tuples(1)) == [(1,), (2,)]
    assert view.index(1, 0)[2] == [(2,)]


def test_encoding_leaves_database_semantics_alone():
    """Encoding reads the COW layer; hash and with_facts identity are
    unchanged afterwards."""
    db = Database([atom("e", "a", "b")])
    before = hash(db)
    store = ColumnStore(SymbolTable())
    store.encoded(db.relation("e"))
    assert hash(db) == before
    assert db.with_facts(atom("e", "a", "b")) is db  # collapse intact
