"""Unit tests for stratification analysis (Section 4, Lemma 1)."""

import pytest

from repro.analysis.stratify import (
    h_stratification,
    h_stratification_violations,
    is_h_stratified,
    is_linearly_stratified,
    linear_stratification,
    negation_strata,
)
from repro.core.errors import StratificationError
from repro.core.parser import parse_program
from repro.library import example9_rulebase, example10_rulebase, layered_rulebase


class TestNegationStrata:
    def test_recursion_through_negation_rejected(self):
        rb = parse_program("a :- ~b. b :- ~a.")
        with pytest.raises(StratificationError):
            negation_strata(rb)

    def test_self_negation_rejected(self):
        rb = parse_program("a :- ~a.")
        with pytest.raises(StratificationError):
            negation_strata(rb)

    def test_layers_in_dependency_order(self):
        rb = parse_program("top :- ~mid. mid :- ~bottom. bottom :- base.")
        layers = negation_strata(rb)
        order = {next(iter(layer)): i for i, layer in enumerate(layers)}
        assert order["bottom"] < order["mid"] < order["top"]

    def test_hypothetical_recursion_allowed(self):
        rb = parse_program("p(X) :- p(X)[add: q(X)].")
        negation_strata(rb)  # must not raise


class TestLemma1Tests:
    def test_example9_is_linearly_stratified(self):
        assert is_linearly_stratified(example9_rulebase())

    def test_example10_is_not(self):
        assert not is_linearly_stratified(example10_rulebase())

    def test_example10_error_mentions_the_class(self):
        with pytest.raises(StratificationError) as info:
            linear_stratification(example10_rulebase())
        assert "a2" in str(info.value)

    def test_negation_recursion_fails_test1(self):
        rb = parse_program("a :- ~b, a[add: c]. b :- ~a.")
        with pytest.raises(StratificationError) as info:
            linear_stratification(rb)
        assert "negation" in str(info.value)

    def test_nonlinear_horn_without_hypotheses_is_fine(self):
        # Non-linear recursion is only fatal combined with hypothetical
        # recursion in the same class.
        rb = parse_program("path(X, Y) :- path(X, Z), path(Z, Y). path(X, Y) :- edge(X, Y).")
        stratification = linear_stratification(rb)
        assert stratification.k == 1
        assert stratification.segment_of("path") == 1  # Delta_1

    def test_indirect_rule2_rejected(self):
        rb = parse_program(
            """
            a :- b, d1, d2.
            d1 :- a[add: c1].
            d2 :- a[add: c2].
            """
        )
        assert not is_linearly_stratified(rb)


class TestStratificationShape:
    def test_example9_three_strata(self):
        stratification = linear_stratification(example9_rulebase())
        assert stratification.k == 3
        # a_i defined in Sigma_i.
        for index in (1, 2, 3):
            assert stratification.segment_of(f"a{index}") == 2 * index
            assert stratification.in_sigma(f"a{index}")
        heads = {item.head.predicate for item in stratification.sigma(2)}
        assert heads == {"a2"}

    def test_edb_predicates_at_segment_zero(self):
        stratification = linear_stratification(example9_rulebase())
        assert stratification.segment_of("b1") == 0
        assert stratification.level_of("b1") == 0
        assert not stratification.in_sigma("b1")

    def test_pure_horn_single_delta(self):
        rb = parse_program("p(X) :- q(X). q(X) :- r(X).")
        stratification = linear_stratification(rb)
        assert stratification.k == 1
        assert stratification.sigma(1) == ()
        assert len(stratification.delta(1)) == 2

    def test_hypothetical_recursion_lands_in_sigma(self):
        rb = parse_program("p(X) :- p(X)[add: q(X)].")
        stratification = linear_stratification(rb)
        assert stratification.segment_of("p") == 2

    def test_negation_below_sigma(self):
        # ~q inside a Sigma rule forces q strictly below.
        rb = parse_program(
            """
            p :- ~q, p[add: h].
            q :- r.
            """
        )
        stratification = linear_stratification(rb)
        assert stratification.segment_of("p") == 2
        assert stratification.segment_of("q") == 1

    def test_negation_on_sigma_predicate_opens_new_stratum(self):
        # Example 8's shape: no :- ~yes with yes hypothetical.
        rb = parse_program(
            """
            yes :- yes[add: h].
            no :- ~yes.
            """
        )
        stratification = linear_stratification(rb)
        assert stratification.k == 2
        assert stratification.segment_of("yes") == 2
        assert stratification.segment_of("no") == 3  # Delta_2

    def test_layered_rulebase_strata(self):
        for k in (1, 2, 5):
            assert linear_stratification(layered_rulebase(k)).k == k

    def test_relaxation_minimality(self):
        # Independent predicates all stay in segment 1.
        rb = parse_program("p :- e1. q :- e2. r :- p, q.")
        stratification = linear_stratification(rb)
        assert set(stratification.part.values()) == {1}

    def test_predicates_in_segment(self):
        stratification = linear_stratification(example9_rulebase())
        assert stratification.predicates_in_segment(2) == {"a1"}

    def test_empty_rulebase(self):
        from repro.core.ast import Rulebase

        stratification = linear_stratification(Rulebase())
        assert stratification.k == 0

    def test_example10_h_partition_matches_the_paper(self):
        # The paper's Example 10 layout: Sigma_1 = {a1} (segment 2),
        # Delta_2 = {b2, c2, d2} (segment 3), Sigma_2 = {a2} (segment 4).
        part = h_stratification(example10_rulebase())
        assert part == {"a1": 2, "d2": 2, "b2": 3, "c2": 3, "a2": 4}
        assert h_stratification_violations(part, example10_rulebase()) == []

    def test_h_stratification_does_not_exclude_negation_cycles(self):
        # Quoting Section 4: "H-stratification, however, does not
        # exclude recursion through negation, nor does it exclude rules
        # of the form (2)".
        negation_cycle = parse_program("a :- ~b. b :- ~a.")
        assert is_h_stratified(negation_cycle)
        assert not is_linearly_stratified(negation_cycle)

    def test_violations_reported_for_bad_partition(self):
        rb = parse_program("p :- p[add: h].")
        bad = {"p": 1}  # hypothetical occurrence in an odd segment
        messages = h_stratification_violations(bad, rb)
        assert messages and "hypothetical" in messages[0]

    def test_linear_implies_h(self):
        for rb in (example9_rulebase(), layered_rulebase(3)):
            assert is_h_stratified(rb)

    def test_mutual_hypothetical_recursion_same_segment(self):
        rb = parse_program(
            """
            even :- select(X), odd[add: b(X)].
            odd :- select(X), even[add: b(X)].
            even :- ~select(X).
            select(X) :- a(X), ~b(X).
            """
        )
        stratification = linear_stratification(rb)
        assert stratification.segment_of("even") == stratification.segment_of("odd") == 2
        assert stratification.segment_of("select") == 1
        assert stratification.k == 1
