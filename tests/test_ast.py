"""Unit tests for repro.core.ast (premises, rules, rulebases)."""

import pytest

from repro.core.ast import (
    Hypothetical,
    Negated,
    Positive,
    Rule,
    Rulebase,
    fact,
    rule,
)
from repro.core.errors import ValidationError
from repro.core.terms import Constant, Variable, atom


class TestPremises:
    def test_positive_str(self):
        assert str(Positive(atom("take", "S", "cs452"))) == "take(S, cs452)"

    def test_negated_str(self):
        assert str(Negated(atom("b", "X"))) == "~b(X)"

    def test_hypothetical_str_single(self):
        premise = Hypothetical(atom("grad", "S"), (atom("take", "S", "C"),))
        assert str(premise) == "grad(S)[add: take(S, C)]"

    def test_hypothetical_str_multi(self):
        premise = Hypothetical(atom("a"), (atom("b"), atom("c")))
        assert str(premise) == "a[add: b, c]"

    def test_hypothetical_requires_additions(self):
        with pytest.raises(ValidationError):
            Hypothetical(atom("a"), ())

    def test_hypothetical_variables_include_additions(self):
        premise = Hypothetical(atom("grad", "S"), (atom("take", "S", "C"),))
        assert {v.name for v in premise.variables()} == {"S", "C"}

    def test_substitute_hypothetical(self):
        premise = Hypothetical(atom("grad", "S"), (atom("take", "S", "C"),))
        bound = premise.substitute({Variable("S"): Constant("tony")})
        assert bound.atom == atom("grad", "tony")
        assert bound.additions == (atom("take", "tony", "C"),)

    def test_goal_property(self):
        assert Positive(atom("p")).goal == atom("p")
        assert Negated(atom("p")).goal == atom("p")
        assert Hypothetical(atom("p"), (atom("q"),)).goal == atom("p")


class TestRule:
    def test_fact_has_empty_body(self):
        assert fact(atom("take", "tony", "cs250")).is_fact

    def test_rule_helper_wraps_atoms(self):
        built = rule(atom("p", "X"), atom("q", "X"), Negated(atom("r", "X")))
        assert isinstance(built.body[0], Positive)
        assert isinstance(built.body[1], Negated)

    def test_variables(self):
        built = rule(atom("p", "X"), atom("q", "X", "Y"))
        assert {v.name for v in built.variables()} == {"X", "Y"}

    def test_constants(self):
        built = rule(atom("p", "X"), atom("q", "X", "cs250"))
        assert {c.value for c in built.constants()} == {"cs250"}

    def test_body_predicates_kinds(self):
        built = rule(
            atom("p"),
            atom("q"),
            Negated(atom("r")),
            Hypothetical(atom("s"), (atom("t"),)),
        )
        assert list(built.body_predicates()) == [
            ("positive", "q"),
            ("negative", "r"),
            ("hypothetical", "s"),
        ]

    def test_added_predicates_not_occurrences(self):
        built = rule(atom("p"), Hypothetical(atom("s"), (atom("t"),)))
        assert built.added_predicates() == {"t"}
        assert ("positive", "t") not in list(built.body_predicates())

    def test_str(self):
        built = rule(atom("p", "X"), atom("q", "X"))
        assert str(built) == "p(X) :- q(X)."
        assert str(fact(atom("p", "a"))) == "p(a)."

    def test_substitute(self):
        built = rule(atom("p", "X"), atom("q", "X"))
        ground = built.substitute({Variable("X"): Constant("a")})
        assert str(ground) == "p(a) :- q(a)."


class TestRulebase:
    def _sample(self):
        return Rulebase(
            [
                rule(atom("grad", "S"), atom("take", "S", "his101")),
                rule(atom("grad", "S"), atom("take", "S", "eng201")),
                rule(atom("top"), Negated(atom("grad", "X"))),
            ]
        )

    def test_definition(self):
        assert len(self._sample().definition("grad")) == 2

    def test_definition_of_unknown_is_empty(self):
        assert self._sample().definition("nope") == ()

    def test_defined_and_edb(self):
        sample = self._sample()
        assert sample.defined_predicates() == {"grad", "top"}
        assert sample.edb_predicates() == {"take"}

    def test_arity_tracking(self):
        assert self._sample().arity("take") == 2
        assert self._sample().arity("top") == 0
        assert self._sample().arity("nope") is None

    def test_arity_conflict_rejected(self):
        with pytest.raises(ValidationError):
            Rulebase([rule(atom("p", "X"), atom("q", "X")),
                      rule(atom("p", "X", "Y"), atom("q", "X"))])

    def test_arity_conflict_in_additions_rejected(self):
        with pytest.raises(ValidationError):
            Rulebase([
                rule(atom("p"), Hypothetical(atom("q"), (atom("r", "X"),))),
                rule(atom("r"), atom("q")),
            ])

    def test_constant_free(self):
        assert not self._sample().is_constant_free  # his101, eng201
        free = Rulebase([rule(atom("p", "X"), atom("q", "X"))])
        assert free.is_constant_free

    def test_has_negation_and_hypotheses(self):
        sample = self._sample()
        assert sample.has_negation()
        assert not sample.has_hypotheses()
        assert sample.is_horn

    def test_concatenation(self):
        extra = rule(atom("extra"), atom("top"))
        combined = self._sample() + [extra]
        assert len(combined) == 4
        assert combined.definition("extra") == (extra,)

    def test_equality_and_hash(self):
        assert self._sample() == self._sample()
        assert hash(self._sample()) == hash(self._sample())

    def test_iteration_preserves_order(self):
        sample = self._sample()
        assert list(sample)[0].head == atom("grad", "S")

    def test_mentioned_includes_added(self):
        sample = Rulebase([rule(atom("p"), Hypothetical(atom("q"), (atom("r"),)))])
        assert sample.mentioned_predicates() == {"p", "q", "r"}
