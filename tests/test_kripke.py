"""Tests for the intuitionistic (Kripke) semantics checker."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.semantics.kripke import KripkeStructure, atom_universe


class TestAtomUniverse:
    def test_covers_vocabulary_and_domain(self):
        rb = parse_program("p(X) :- q(X, a).")
        db = Database.from_relations({"q": [("b", "a")]})
        universe = atom_universe(rb, db)
        names = {str(item) for item in universe}
        assert "p(a)" in names and "p(b)" in names
        assert "q(a, b)" in names and "q(b, a)" in names

    def test_zero_ary_predicates(self):
        rb = parse_program("yes :- no.")
        universe = atom_universe(rb, Database())
        assert {str(item) for item in universe} == {"yes", "no"}


class TestBuild:
    def test_world_count(self):
        rb = parse_program("a :- b.")
        structure = KripkeStructure.build(rb, Database())
        # universe {a, b}, base empty -> 4 worlds.
        assert len(structure.worlds) == 4

    def test_base_world_included(self):
        rb = parse_program("a :- b.")
        base = Database([atom("b")])
        structure = KripkeStructure.build(rb, base)
        assert base in structure.worlds

    def test_rejects_negation(self):
        rb = parse_program("a :- ~b.")
        with pytest.raises(EvaluationError):
            KripkeStructure.build(rb, Database())

    def test_rejects_huge_universes(self):
        rb = parse_program("p(X, Y, Z) :- q(X, Y, Z).")
        db = Database.from_relations({"q": [(f"c{i}", "c0", "c0") for i in range(4)]})
        with pytest.raises(EvaluationError):
            KripkeStructure.build(rb, db)


class TestIntuitionisticLaws:
    CASES = [
        "a :- b, c. outer :- inner[add: b]. inner :- a[add: c].",
        "p(X) :- q(X)[add: r(X)]. q(X) :- r(X), s(X).",
        "even :- sel, odd[add: m]. odd :- sel, even[add: m]. ",
        "chain :- mid[add: b1]. mid :- goal[add: b2]. goal :- b1, b2.",
    ]

    @pytest.mark.parametrize("program", CASES)
    def test_persistence(self, program):
        rb = parse_program(program)
        structure = KripkeStructure.build(rb, Database())
        assert structure.check_persistence() is None

    @pytest.mark.parametrize("program", CASES)
    def test_implication_law(self, program):
        rb = parse_program(program)
        structure = KripkeStructure.build(rb, Database())
        assert structure.check_implication_law() is None

    def test_with_nonempty_base(self):
        rb = parse_program("p(X) :- q(X)[add: r(X)]. q(X) :- r(X), s(X).")
        base = Database.from_relations({"s": ["u"]})
        structure = KripkeStructure.build(rb, base)
        assert structure.check_persistence() is None
        assert structure.check_implication_law() is None
        assert atom("p", "u") in structure.forced(base)

    def test_forced_grows_along_the_order(self):
        rb = parse_program("a :- b.")
        structure = KripkeStructure.build(rb, Database())
        empty = Database()
        with_b = Database([atom("b")])
        assert structure.forced(empty) < structure.forced(with_b)

    def test_deletions_rejected(self):
        rb = parse_program("p :- q[del: f]. q :- g.")
        structure = KripkeStructure.build(rb, Database())
        with pytest.raises(EvaluationError):
            structure.check_implication_law()
