"""The unified diagnostics pipeline: codes, config, spans, emitters."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticConfig,
    check,
    check_source,
    render_text,
    severity_rank,
    to_json,
    to_sarif,
    worst_severity,
)
from repro.core.parser import parse_program


def codes_of(diags):
    return [d.code for d in diags]


class TestCatalogue:
    def test_every_code_has_a_valid_default_severity(self):
        for info in CODES.values():
            assert severity_rank(info.default_severity) >= 1

    def test_legacy_codes_are_present(self):
        for code in (
            "unsafe-head",
            "floating-hypothesis",
            "unused-predicate",
            "undefined-reference",
            "constant-symbols",
            "negation-cycle",
            "not-linearly-stratified",
        ):
            assert code in CODES

    def test_new_codes_are_present(self):
        for code in (
            "parse-error",
            "invalid-program",
            "cost-blowup",
            "domain-grounded-variable",
            "free-recursive-call",
            "duplicate-rule",
        ):
            assert code in CODES


class TestCheck:
    def test_clean_rulebase_yields_no_warnings(self):
        rb = parse_program("out(X) :- q(X), ~r(X).")
        diags = check(rb)
        assert worst_severity(diags) in ("none", "info")

    def test_unsafe_head_has_span(self):
        rb = parse_program("p(X) :- marker.", filename="f.dl")
        diag = next(d for d in check(rb) if d.code == "unsafe-head")
        assert diag.severity == "warning"
        assert diag.location == "f.dl:1:1"

    def test_cost_blowup_at_exponent_two(self):
        rb = parse_program("p :- q(X)[add: r(Y)].")
        diags = check(rb)
        assert "cost-blowup" in codes_of(diags)
        assert "floating-hypothesis" in codes_of(diags)

    def test_no_cost_blowup_at_exponent_one(self):
        rb = parse_program("p(X) :- ~q(X).")
        assert "cost-blowup" not in codes_of(check(rb))

    def test_domain_grounded_variable_reported(self):
        rb = parse_program("p :- q(X)[add: r(X)].")
        diag = next(
            d for d in check(rb) if d.code == "domain-grounded-variable"
        )
        assert "X" in diag.message

    def test_duplicate_rule_points_at_second_occurrence(self):
        rb = parse_program("p(X) :- q(X).\np(X) :- q(X).", filename="d.dl")
        diag = next(d for d in check(rb) if d.code == "duplicate-rule")
        assert diag.span.line == 2
        assert "first at d.dl:1:1" in diag.message

    def test_free_recursive_call(self):
        rb = parse_program("same(X, Y) :- same(Y, X).")
        assert "free-recursive-call" in codes_of(check(rb))

    def test_bound_recursion_not_flagged(self):
        rb = parse_program(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
        )
        assert "free-recursive-call" not in codes_of(check(rb))

    def test_negation_cycle_is_error(self):
        rb = parse_program("a :- ~b. b :- ~a.")
        diag = next(d for d in check(rb) if d.code == "negation-cycle")
        assert diag.severity == "error"

    def test_every_diagnostic_resolves_to_line_col(self):
        rb = parse_program(
            "p(X) :- marker.\nq :- r(Y)[add: s(Z)].", filename="all.dl"
        )
        for diag in check(rb):
            if diag.span is not None:
                assert diag.location.startswith("all.dl:")
                assert diag.span.line >= 1 and diag.span.column >= 1


class TestConfig:
    def test_severity_override(self):
        rb = parse_program("p(X) :- marker.")
        config = DiagnosticConfig(severities={"unsafe-head": "error"})
        diag = next(d for d in check(rb, config) if d.code == "unsafe-head")
        assert diag.severity == "error"

    def test_disable_drops_code(self):
        rb = parse_program("p(X) :- marker.")
        config = DiagnosticConfig(disabled=frozenset({"unsafe-head"}))
        assert "unsafe-head" not in codes_of(check(rb, config))

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            DiagnosticConfig(severities={"no-such-code": "error"})

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            DiagnosticConfig(severities={"unsafe-head": "fatal"})


class TestCheckSource:
    def test_parse_error_becomes_diagnostic(self):
        rulebase, diags = check_source("p(X :- q(X).", "bad.dl")
        assert rulebase is None
        assert codes_of(diags) == ["parse-error"]
        assert diags[0].severity == "error"
        assert diags[0].span.source == "bad.dl"

    def test_invalid_program_becomes_diagnostic(self):
        # Inconsistent arity is a ValidationError, not a ParseError.
        rulebase, diags = check_source("p(X) :- q(X), q(X, Y).", "bad.dl")
        assert rulebase is None
        assert codes_of(diags) == ["invalid-program"]

    def test_good_source_round_trips(self):
        rulebase, diags = check_source("out(X) :- q(X).", "ok.dl")
        assert rulebase is not None
        assert worst_severity(diags) in ("none", "info")


class TestEmitters:
    def _sample(self):
        rb = parse_program("p(X) :- marker.", filename="s.dl")
        return check(rb)

    def test_render_text_one_line_per_finding(self):
        diags = self._sample()
        lines = render_text(diags).splitlines()
        assert len(lines) == len(diags)
        assert any("s.dl:1:1" in line for line in lines)

    def test_render_text_verbose_adds_rule(self):
        text = render_text(self._sample(), verbose=True)
        assert "p(X) :- marker." in text

    def test_render_text_empty(self):
        assert render_text([]) == "no findings"

    def test_json_is_valid_and_complete(self):
        payload = json.loads(to_json(self._sample()))
        assert isinstance(payload, list) and payload
        for entry in payload:
            assert set(entry) == {
                "code",
                "severity",
                "message",
                "location",
                "span",
                "rule",
                "suggestion",
            }
            assert entry["code"] in CODES

    def test_json_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "severity", "message", "location"],
                "properties": {
                    "code": {"type": "string"},
                    "severity": {"enum": ["info", "warning", "error"]},
                    "message": {"type": "string"},
                    "location": {"type": "string"},
                    "span": {"type": ["object", "null"]},
                    "rule": {"type": ["string", "null"]},
                    "suggestion": {"type": ["string", "null"]},
                },
            },
        }
        jsonschema.validate(json.loads(to_json(self._sample())), schema)

    def test_sarif_shape(self):
        log = json.loads(to_sarif(self._sample()))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "hypodatalog"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(CODES)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("note", "warning", "error")

    def test_sarif_region_matches_span(self):
        diags = self._sample()
        log = json.loads(to_sarif(diags))
        spanned = [d for d in diags if d.span is not None]
        located = [
            r for r in log["runs"][0]["results"] if "locations" in r
        ]
        assert len(located) == len(spanned)
        region = located[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_sarif_validates_against_minimal_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "runs": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["tool", "results"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["ruleId", "message"],
                                },
                            },
                        },
                    },
                },
            },
        }
        jsonschema.validate(json.loads(to_sarif(self._sample())), schema)


class TestDiagnosticType:
    def test_str_format(self):
        diag = Diagnostic(
            code="unsafe-head",
            message="boom",
            severity="warning",
        )
        assert str(diag) == "<rulebase>: warning[unsafe-head] boom"

    def test_worst_severity_ordering(self):
        mk = lambda sev: Diagnostic(code="unsafe-head", message="m", severity=sev)
        assert worst_severity([mk("info"), mk("error"), mk("warning")]) == "error"
        assert worst_severity([]) == "none"
