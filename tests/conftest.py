"""Shared test fixtures.

The one fixture here is hygiene for the fault-injection harness
(:mod:`repro.testing.failpoints`): failpoints are armed through module
globals, so a test that fails (or errors) between ``__enter__`` and
``__exit__`` of :func:`failpoints.armed` would otherwise leave the
site armed and poison every later test in the same process — a budget
charge anywhere would raise an injected ``ResourceExhausted`` with no
visible connection to the actual culprit.  The autouse fixture below
guarantees a clean registry around *every* test, so one failing
fault-injection test stays one failing test.
"""

import pytest

from repro.testing import failpoints


@pytest.fixture(autouse=True)
def _failpoints_hygiene():
    """Disarm stray failpoints before and after every test."""
    if failpoints.enabled:
        failpoints.reset()
    yield
    if failpoints.enabled:
        failpoints.reset()
