"""Tests for the interactive console."""

import io

import pytest

from repro.repl import Repl, run


@pytest.fixture
def repl():
    return Repl()


class TestAssertions:
    def test_add_rule(self, repl):
        out = repl.feed("grad(S) :- take(S, m1).")
        assert "added rule" in out
        assert len(repl.rulebase) == 1

    def test_missing_dot_is_tolerated(self, repl):
        repl.feed("grad(S) :- take(S, m1)")
        assert len(repl.rulebase) == 1

    def test_assert_fact(self, repl):
        out = repl.feed("take(ann, m1).")
        assert "asserted fact" in out
        assert len(repl.db) == 1

    def test_non_ground_fact_becomes_rule(self, repl):
        repl.feed("always(X).")
        assert len(repl.rulebase) == 1
        assert len(repl.db) == 0

    def test_blank_and_comment_lines(self, repl):
        assert repl.feed("") == ""
        assert repl.feed("   % nothing") == ""

    def test_parse_error_reported(self, repl):
        out = repl.feed("p(a")
        assert out.startswith("error:")


class TestQueries:
    def _setup(self, repl):
        repl.feed("grad(S) :- take(S, m1), take(S, m2).")
        repl.feed("take(ann, m1).")
        repl.feed("take(ben, m1).")
        repl.feed("take(ben, m2).")

    def test_ground_query(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad(ben).") == "yes"
        assert repl.feed("?- grad(ann).") == "no"

    def test_hypothetical_query(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad(ann)[add: take(ann, m2)].") == "yes"

    def test_pattern_query_enumerates_bindings(self, repl):
        self._setup(repl)
        out = repl.feed("?- grad(S).")
        assert out == "S = ben"

    def test_pattern_query_no_answers(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad2(S).") == "no"

    def test_negated_query(self, repl):
        self._setup(repl)
        assert repl.feed("?- ~grad(ann).") == "yes"

    def test_session_rebuilt_after_assertions(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad(ann).") == "no"
        repl.feed("take(ann, m2).")
        assert repl.feed("?- grad(ann).") == "yes"


class TestCommands:
    def test_quit(self, repl):
        assert repl.feed(":quit") == "bye"
        assert repl.done

    def test_help(self, repl):
        assert ":classify" in repl.feed(":help")

    def test_rules_and_facts_listing(self, repl):
        assert repl.feed(":rules") == "(no rules)"
        assert repl.feed(":facts") == "(no facts)"
        repl.feed("p :- q.")
        repl.feed("q.")
        assert "p :- q." in repl.feed(":rules")
        assert "q." in repl.feed(":facts")

    def test_classify(self, repl):
        repl.feed("p :- p[add: h].")
        assert "NP" in repl.feed(":classify")

    def test_stratify(self, repl):
        repl.feed("p :- p[add: h].")
        assert "Sigma_1" in repl.feed(":stratify")

    def test_lint(self, repl):
        repl.feed("p(X) :- marker.")
        assert "unsafe-head" in repl.feed(":lint")

    def test_engine_switching(self, repl):
        repl.feed("p :- q.")
        assert repl.feed(":engine topdown") == "engine: topdown"
        assert repl.feed(":engine bogus").startswith("error:")

    def test_explain(self, repl):
        repl.feed("p :- q.")
        repl.feed("q.")
        out = repl.feed(":explain p")
        assert "[by rule: p :- q.]" in out
        assert repl.feed(":explain nope") == "not provable"

    def test_load_and_db(self, repl, tmp_path):
        rules = tmp_path / "r.dl"
        rules.write_text("p(X) :- q(X).")
        facts = tmp_path / "f.dl"
        facts.write_text("q(a).")
        assert "1 rules total" in repl.feed(f":load {rules}")
        assert "1 facts total" in repl.feed(f":db {facts}")
        assert repl.feed("?- p(a).") == "yes"

    def test_reset(self, repl):
        repl.feed("p :- q.")
        repl.feed("q.")
        assert repl.feed(":reset") == "cleared"
        assert repl.feed("?- p.") == "no"

    def test_unknown_command(self, repl):
        assert "unknown command" in repl.feed(":frobnicate")


class TestRunLoop:
    def test_scripted_session(self):
        stdin = io.StringIO("q.\np :- q.\n?- p.\n:quit\nignored\n")
        stdout = io.StringIO()
        assert run(stdin=stdin, stdout=stdout) == 0
        output = stdout.getvalue()
        assert "yes" in output
        assert "bye" in output
        assert "ignored" not in output

    def test_eof_terminates(self):
        stdin = io.StringIO("?- nothing.\n")
        stdout = io.StringIO()
        assert run(stdin=stdin, stdout=stdout) == 0

    def test_keyboard_interrupt_during_feed_is_survived(self, monkeypatch):
        # A Ctrl-C that escapes the engines (e.g. while printing) must
        # not kill the loop; the session continues to the next line.
        lines = iter(["?- p.\n", ":quit\n"])

        class Stdin:
            def readline(self):
                return next(lines)

        calls = {"n": 0}
        original = Repl.feed

        def feed(self, line):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return original(self, line)

        monkeypatch.setattr(Repl, "feed", feed)
        stdout = io.StringIO()
        assert run(stdin=Stdin(), stdout=stdout) == 0
        output = stdout.getvalue()
        assert "cancelled" in output
        assert "bye" in output

    def test_eof_error_at_prompt_terminates(self):
        class Stdin:
            def readline(self):
                raise EOFError

        stdout = io.StringIO()
        assert run(stdin=Stdin(), stdout=stdout) == 0


HAMILTONIAN_LINES = [
    "yes :- node(X), path(X)[add: pnode(X)].",
    "path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].",
    "path(X) :- ~select(Y).",
    "select(Y) :- node(Y), ~pnode(Y).",
    "node(a).", "node(b).", "node(c).",
    "edge(a, b).", "edge(b, c).",
]


class TestLimits:
    @pytest.fixture
    def loaded(self):
        repl = Repl()
        for line in HAMILTONIAN_LINES:
            repl.feed(line)
        return repl

    def test_show_default(self, repl):
        assert repl.feed(":limits") == "limits: (no limits)"

    def test_set_and_show(self, repl):
        out = repl.feed(":limits steps=100 timeout=2")
        assert "steps=100" in out and "timeout=2.0s" in out
        assert "steps=100" in repl.feed(":limits")

    def test_off(self, repl):
        repl.feed(":limits steps=5")
        assert repl.feed(":limits off") == "limits: (no limits)"

    def test_bad_key(self, repl):
        assert "usage" in repl.feed(":limits bogus=1")

    def test_bad_value(self, repl):
        assert "needs a number" in repl.feed(":limits steps=abc")

    def test_non_positive_rejected(self, repl):
        assert "must be positive" in repl.feed(":limits steps=0")

    def test_exhausted_query_reports_partials(self, loaded):
        loaded.feed(":limits steps=3")
        out = loaded.feed("?- yes.")
        assert "exhausted" in out
        assert "spent:" in out

    def test_session_survives_exhaustion(self, loaded):
        loaded.feed(":limits steps=3")
        loaded.feed("?- yes.")
        loaded.feed(":limits off")
        assert loaded.feed("?- yes.") == "yes"

    def test_limits_apply_per_query_not_cumulatively(self, loaded):
        # Two queries under the same limit: each gets a fresh budget,
        # so the second is not charged for the first's work.
        loaded.feed(":limits steps=100000")
        first = loaded.feed("?- yes.")
        second = loaded.feed("?- yes.")
        assert first == second == "yes"

    def test_exhausted_answers_show_partial_rows(self, loaded):
        loaded.feed(":limits steps=6")
        out = loaded.feed("?- select(Y).")
        assert "exhausted" in out
        # Partial rows, when present, use the query's variable names.
        if "partial answers" in out:
            assert "Y = " in out

    def test_profile_under_limits(self, loaded):
        loaded.feed(":limits steps=3")
        out = loaded.feed(":profile yes")
        assert "exhausted" in out
