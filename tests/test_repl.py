"""Tests for the interactive console."""

import io

import pytest

from repro.repl import Repl, run


@pytest.fixture
def repl():
    return Repl()


class TestAssertions:
    def test_add_rule(self, repl):
        out = repl.feed("grad(S) :- take(S, m1).")
        assert "added rule" in out
        assert len(repl.rulebase) == 1

    def test_missing_dot_is_tolerated(self, repl):
        repl.feed("grad(S) :- take(S, m1)")
        assert len(repl.rulebase) == 1

    def test_assert_fact(self, repl):
        out = repl.feed("take(ann, m1).")
        assert "asserted fact" in out
        assert len(repl.db) == 1

    def test_non_ground_fact_becomes_rule(self, repl):
        repl.feed("always(X).")
        assert len(repl.rulebase) == 1
        assert len(repl.db) == 0

    def test_blank_and_comment_lines(self, repl):
        assert repl.feed("") == ""
        assert repl.feed("   % nothing") == ""

    def test_parse_error_reported(self, repl):
        out = repl.feed("p(a")
        assert out.startswith("error:")


class TestQueries:
    def _setup(self, repl):
        repl.feed("grad(S) :- take(S, m1), take(S, m2).")
        repl.feed("take(ann, m1).")
        repl.feed("take(ben, m1).")
        repl.feed("take(ben, m2).")

    def test_ground_query(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad(ben).") == "yes"
        assert repl.feed("?- grad(ann).") == "no"

    def test_hypothetical_query(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad(ann)[add: take(ann, m2)].") == "yes"

    def test_pattern_query_enumerates_bindings(self, repl):
        self._setup(repl)
        out = repl.feed("?- grad(S).")
        assert out == "S = ben"

    def test_pattern_query_no_answers(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad2(S).") == "no"

    def test_negated_query(self, repl):
        self._setup(repl)
        assert repl.feed("?- ~grad(ann).") == "yes"

    def test_session_rebuilt_after_assertions(self, repl):
        self._setup(repl)
        assert repl.feed("?- grad(ann).") == "no"
        repl.feed("take(ann, m2).")
        assert repl.feed("?- grad(ann).") == "yes"


class TestCommands:
    def test_quit(self, repl):
        assert repl.feed(":quit") == "bye"
        assert repl.done

    def test_help(self, repl):
        assert ":classify" in repl.feed(":help")

    def test_rules_and_facts_listing(self, repl):
        assert repl.feed(":rules") == "(no rules)"
        assert repl.feed(":facts") == "(no facts)"
        repl.feed("p :- q.")
        repl.feed("q.")
        assert "p :- q." in repl.feed(":rules")
        assert "q." in repl.feed(":facts")

    def test_classify(self, repl):
        repl.feed("p :- p[add: h].")
        assert "NP" in repl.feed(":classify")

    def test_stratify(self, repl):
        repl.feed("p :- p[add: h].")
        assert "Sigma_1" in repl.feed(":stratify")

    def test_lint(self, repl):
        repl.feed("p(X) :- marker.")
        assert "unsafe-head" in repl.feed(":lint")

    def test_engine_switching(self, repl):
        repl.feed("p :- q.")
        assert repl.feed(":engine topdown") == "engine: topdown"
        assert repl.feed(":engine bogus").startswith("error:")

    def test_explain(self, repl):
        repl.feed("p :- q.")
        repl.feed("q.")
        out = repl.feed(":explain p")
        assert "[by rule: p :- q.]" in out
        assert repl.feed(":explain nope") == "not provable"

    def test_load_and_db(self, repl, tmp_path):
        rules = tmp_path / "r.dl"
        rules.write_text("p(X) :- q(X).")
        facts = tmp_path / "f.dl"
        facts.write_text("q(a).")
        assert "1 rules total" in repl.feed(f":load {rules}")
        assert "1 facts total" in repl.feed(f":db {facts}")
        assert repl.feed("?- p(a).") == "yes"

    def test_reset(self, repl):
        repl.feed("p :- q.")
        repl.feed("q.")
        assert repl.feed(":reset") == "cleared"
        assert repl.feed("?- p.") == "no"

    def test_unknown_command(self, repl):
        assert "unknown command" in repl.feed(":frobnicate")


class TestRunLoop:
    def test_scripted_session(self):
        stdin = io.StringIO("q.\np :- q.\n?- p.\n:quit\nignored\n")
        stdout = io.StringIO()
        assert run(stdin=stdin, stdout=stdout) == 0
        output = stdout.getvalue()
        assert "yes" in output
        assert "bye" in output
        assert "ignored" not in output

    def test_eof_terminates(self):
        stdin = io.StringIO("?- nothing.\n")
        stdout = io.StringIO()
        assert run(stdin=stdin, stdout=stdout) == 0

    def test_keyboard_interrupt_during_feed_is_survived(self, monkeypatch):
        # A Ctrl-C that escapes the engines (e.g. while printing) must
        # not kill the loop; the session continues to the next line.
        lines = iter(["?- p.\n", ":quit\n"])

        class Stdin:
            def readline(self):
                return next(lines)

        calls = {"n": 0}
        original = Repl.feed

        def feed(self, line):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return original(self, line)

        monkeypatch.setattr(Repl, "feed", feed)
        stdout = io.StringIO()
        assert run(stdin=Stdin(), stdout=stdout) == 0
        output = stdout.getvalue()
        assert "cancelled" in output
        assert "bye" in output

    def test_eof_error_at_prompt_terminates(self):
        class Stdin:
            def readline(self):
                raise EOFError

        stdout = io.StringIO()
        assert run(stdin=Stdin(), stdout=stdout) == 0


HAMILTONIAN_LINES = [
    "yes :- node(X), path(X)[add: pnode(X)].",
    "path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].",
    "path(X) :- ~select(Y).",
    "select(Y) :- node(Y), ~pnode(Y).",
    "node(a).", "node(b).", "node(c).",
    "edge(a, b).", "edge(b, c).",
]


class TestLimits:
    @pytest.fixture
    def loaded(self):
        repl = Repl()
        for line in HAMILTONIAN_LINES:
            repl.feed(line)
        return repl

    def test_show_default(self, repl):
        assert repl.feed(":limits") == "limits: (no limits)"

    def test_set_and_show(self, repl):
        out = repl.feed(":limits steps=100 timeout=2")
        assert "steps=100" in out and "timeout=2.0s" in out
        assert "steps=100" in repl.feed(":limits")

    def test_off(self, repl):
        repl.feed(":limits steps=5")
        assert repl.feed(":limits off") == "limits: (no limits)"

    def test_bad_key(self, repl):
        assert "usage" in repl.feed(":limits bogus=1")

    def test_bad_value(self, repl):
        assert "needs a number" in repl.feed(":limits steps=abc")

    def test_non_positive_rejected(self, repl):
        assert "must be positive" in repl.feed(":limits steps=0")

    def test_exhausted_query_reports_partials(self, loaded):
        loaded.feed(":limits steps=3")
        out = loaded.feed("?- yes.")
        assert "exhausted" in out
        assert "spent:" in out

    def test_session_survives_exhaustion(self, loaded):
        loaded.feed(":limits steps=3")
        loaded.feed("?- yes.")
        loaded.feed(":limits off")
        assert loaded.feed("?- yes.") == "yes"

    def test_limits_apply_per_query_not_cumulatively(self, loaded):
        # Two queries under the same limit: each gets a fresh budget,
        # so the second is not charged for the first's work.
        loaded.feed(":limits steps=100000")
        first = loaded.feed("?- yes.")
        second = loaded.feed("?- yes.")
        assert first == second == "yes"

    def test_exhausted_answers_show_partial_rows(self, loaded):
        loaded.feed(":limits steps=6")
        out = loaded.feed("?- select(Y).")
        assert "exhausted" in out
        # Partial rows, when present, use the query's variable names.
        if "partial answers" in out:
            assert "Y = " in out

    def test_profile_under_limits(self, loaded):
        loaded.feed(":limits steps=3")
        out = loaded.feed(":profile yes")
        assert "exhausted" in out


class TestConnect:
    """``:connect`` — the REPL as a client of ``hypodatalog serve``."""

    @pytest.fixture
    def server_address(self):
        import asyncio
        import threading
        import time

        from repro.core.parser import parse_database, parse_program
        from repro.server import (
            HypoDatalogServer,
            ServerConfig,
            SharedRulebase,
        )

        shared = SharedRulebase(
            parse_program("grad(S) :- take(S, m1), take(S, m2)."),
            parse_database("take(ann, m1). take(ben, m1). take(ben, m2)."),
        )
        server = HypoDatalogServer(shared, ServerConfig(port=0))
        loop = asyncio.new_event_loop()
        started = {}

        def runner():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            started["address"] = server.address
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        while "address" not in started:
            time.sleep(0.005)
        yield started["address"]
        asyncio.run_coroutine_threadsafe(
            server.shutdown(drain_timeout=2.0), loop
        ).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)

    def test_connect_query_assert_disconnect(self, repl, server_address):
        host, port = server_address
        out = repl.feed(f":connect {host}:{port}")
        assert "connected" in out
        assert "1 rules" in out
        assert repl.feed("?- grad(ben).") == "yes"
        assert repl.feed("?- grad(ann).") == "no"
        assert repl.feed("?- grad(S).") == "S = ben"
        assert repl.feed("?- grad(ann)[add: take(ann, m2)].") == "yes"
        # Ground asserts go to the private server-side session...
        assert "asserted remotely" in repl.feed("take(cat, m1).")
        assert "asserted remotely" in repl.feed("take(cat, m2).")
        assert repl.feed("?- grad(cat).") == "yes"
        # ...while rules are refused: the server rulebase is read-only.
        assert "read-only" in repl.feed("p(X) :- q(X).")
        out = repl.feed(":disconnect")
        assert "disconnected" in out
        # Local state was untouched while connected.
        assert len(repl.rulebase) == 0
        assert len(repl.db) == 0

    def test_remote_errors_use_stable_codes(self, repl, server_address):
        host, port = server_address
        repl.feed(f":connect {host}:{port}")
        out = repl.feed("?- grad(.")
        assert out.startswith("error:")
        repl.feed(":disconnect")

    def test_limits_become_remote_budgets(self, repl, server_address):
        host, port = server_address
        repl.feed(f":connect {host}:{port}")
        repl.feed(":limits steps=5")
        # The budget rides along; this tiny query stays within it.
        assert repl.feed("?- grad(ben).") == "yes"
        repl.feed(":disconnect")

    def test_connect_refused_when_nobody_listens(self, repl):
        out = repl.feed(":connect 127.0.0.1:1")
        assert out.startswith("error: cannot connect")
        # The REPL stays local and usable.
        assert repl.feed("take(ann, m1).").startswith("asserted fact")

    def test_connect_usage_errors(self, repl):
        assert "usage" in repl.feed(":connect nonsense")
        assert "usage" in repl.feed(":connect host:notaport")

    def test_disconnect_when_not_connected(self, repl):
        assert repl.feed(":disconnect") == "not connected"

    def test_lost_connection_degrades_gracefully(self, repl, server_address):
        host, port = server_address
        repl.feed(f":connect {host}:{port}")
        # Kill the transport out from under the REPL.
        repl._remote._sock.close()
        repl._remote._file.close()
        out = repl.feed("?- grad(ben).")
        assert "lost connection" in out or out.startswith("error:")
        # The link was dropped; local evaluation resumes.
        assert repl._remote is None
        assert repl.feed("take(ann, m1).").startswith("asserted fact")
