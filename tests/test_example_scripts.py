"""Every script in examples/ must run clean (they assert internally)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "graph_analysis",
        "parity_counting",
        "machine_encoding",
        "legal_reasoning",
        "explanations",
        "timetabling",
        "expressibility_tour",
    } <= names
