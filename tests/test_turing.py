"""Unit tests for the Turing-machine substrate."""

import pytest

from repro.core.errors import MachineError
from repro.machines.turing import BLANK, Machine, Step, run_machine
from repro.machines.library import contains_one, even_ones, first_or_second_a


class TestValidation:
    def test_move_must_be_unit(self):
        with pytest.raises(MachineError):
            Step("s", "0", "s", "0", 2)

    def test_oracle_move_must_be_unit(self):
        with pytest.raises(MachineError):
            Step("s", "0", "s", "0", 0, oracle_write="0", oracle_move=5)

    def test_oracle_states_all_or_nothing(self):
        with pytest.raises(MachineError):
            Machine(
                name="m",
                steps=(),
                initial="s",
                accepting=frozenset(),
                query_state="ask",
            )

    def test_oracle_machine_needs_oracle_writes(self):
        with pytest.raises(MachineError):
            Machine(
                name="m",
                steps=(Step("s", "0", "s", "0", 1),),
                initial="s",
                accepting=frozenset(),
                query_state="ask",
                yes_state="y",
                no_state="n",
            )

    def test_plain_machine_rejects_oracle_writes(self):
        with pytest.raises(MachineError):
            Machine(
                name="m",
                steps=(Step("s", "0", "s", "0", 1, oracle_write="0"),),
                initial="s",
                accepting=frozenset(),
            )

    def test_query_state_may_not_transition(self):
        with pytest.raises(MachineError):
            Machine(
                name="m",
                steps=(Step("ask", "0", "s", "0", 1, oracle_write="0"),),
                initial="s",
                accepting=frozenset(),
                query_state="ask",
                yes_state="y",
                no_state="n",
            )

    def test_symbol_names_must_be_identifier_friendly(self):
        with pytest.raises(MachineError):
            Machine(
                name="m",
                steps=(Step("s", "@", "s", "@", 1),),
                initial="s",
                accepting=frozenset(),
            )

    def test_derived_properties(self):
        machine = contains_one()
        assert machine.states == {"scan", "acc"}
        assert machine.alphabet == {"0", "1", BLANK}
        assert not machine.uses_oracle
        assert len(machine.transitions("scan", "0")) == 1
        assert machine.transitions("scan", BLANK) == ()


class TestRunMachine:
    @pytest.mark.parametrize("text", ["", "0", "1", "01", "000", "0001"])
    def test_contains_one(self, text):
        accepted = run_machine(contains_one(), list(text), len(text) + 2)
        assert accepted == ("1" in text)

    @pytest.mark.parametrize("text", ["", "1", "11", "101", "0110", "111"])
    def test_even_ones(self, text):
        accepted = run_machine(even_ones(), list(text), len(text) + 2)
        assert accepted == (text.count("1") % 2 == 0)

    @pytest.mark.parametrize("text", ["a", "b", "ab", "ba", "bb", "bab"])
    def test_nondeterministic_guess(self, text):
        accepted = run_machine(first_or_second_a(), list(text), len(text) + 2)
        assert accepted == ("a" in text[:2])

    def test_time_bound_limits_acceptance(self):
        # contains_one on "01" needs 2 steps; a 2-cell counter allows 1.
        assert not run_machine(contains_one(), ["0", "1"], 2)

    def test_head_cannot_leave_the_counter(self):
        # A machine that always moves left dies immediately.
        machine = Machine(
            name="leftward",
            steps=(Step("s", BLANK, "s", BLANK, -1),),
            initial="s",
            accepting=frozenset({"never"}),
        )
        assert not run_machine(machine, [], 5)

    def test_rejects_oracle_machines(self):
        from repro.machines.library import copy_and_query

        with pytest.raises(MachineError):
            run_machine(copy_and_query(True, "m"), [], 5)

    def test_input_must_fit(self):
        with pytest.raises(MachineError):
            run_machine(contains_one(), ["0"] * 5, 3)

    def test_accept_state_as_initial(self):
        machine = Machine(
            name="trivial",
            steps=(),
            initial="acc",
            accepting=frozenset({"acc"}),
        )
        assert run_machine(machine, [], 1)
