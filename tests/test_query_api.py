"""Unit tests for the Session / ask / answers API."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_program
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.query import Session, answers, ask
from repro.engine.topdown import TopDownEngine
from repro.library import (
    degree_rulebase,
    example10_rulebase,
    graduation_db,
    graduation_rulebase,
)


class TestEngineSelection:
    def test_auto_picks_prover_for_linear_rulebases(self):
        session = Session(graduation_rulebase())
        assert session.engine_name == "prove"
        assert isinstance(session.engine, LinearStratifiedProver)

    def test_auto_falls_back_to_topdown_engine(self):
        session = Session(example10_rulebase())
        assert session.engine_name == "topdown"
        assert isinstance(session.engine, TopDownEngine)

    def test_explicit_model(self):
        session = Session(graduation_rulebase(), "model")
        assert isinstance(session.engine, PerfectModelEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(EvaluationError):
            Session(graduation_rulebase(), "magic")


class TestQueries:
    def test_ask_text_query(self):
        session = Session(graduation_rulebase())
        assert session.ask(graduation_db(), "grad(sue)")
        assert not session.ask(graduation_db(), "grad(pat)")

    def test_ask_atom_object(self):
        from repro.core.terms import atom

        session = Session(graduation_rulebase())
        assert session.ask(graduation_db(), atom("grad", "sue"))

    def test_ask_premise_object(self):
        from repro.core.ast import Hypothetical
        from repro.core.terms import atom

        session = Session(graduation_rulebase())
        premise = Hypothetical(
            atom("grad", "tony"), (atom("take", "tony", "cs250"),)
        )
        assert session.ask(graduation_db(), premise)

    def test_answers(self):
        session = Session(graduation_rulebase())
        assert session.answers(graduation_db(), "within_one(S)") == {
            ("tony",),
            ("sue",),
        }

    def test_classify_passthrough(self):
        assert Session(degree_rulebase()).classify().class_name == "PSPACE"

    def test_one_shot_helpers(self):
        rb = graduation_rulebase()
        db = graduation_db()
        assert ask(rb, db, "grad(sue)")
        assert ("sue",) in answers(rb, db, "grad(S)")

    def test_session_explain(self):
        from repro.engine.proofs import verify_proof

        session = Session(graduation_rulebase())
        proof = session.explain(
            graduation_db(), "grad(tony)[add: take(tony, cs250)]"
        )
        assert proof is not None
        assert verify_proof(graduation_rulebase(), proof)
        assert session.explain(graduation_db(), "grad(pat)") is None

    def test_engines_agree_on_example3(self):
        # The degree rulebase only runs on the model engine; check the
        # expected answers directly.
        session = Session(degree_rulebase())
        from repro.library import degree_db

        rows = session.answers(degree_db(), "grad(S, mathphys)")
        assert ("ada",) in rows and ("bob",) in rows
        assert ("cyd",) not in rows
