"""Tests for the wire protocol and error serialization (docs/SERVER.md).

Pure tests — no sockets.  Covers frame decode/encode validation, the
stable error-code vocabulary, the exception→code mapping that mirrors
the CLI exit ladder, and the JSON round trips on
:class:`~repro.core.errors.PartialResult` /
:class:`~repro.core.errors.ResourceExhausted` that carry partial
results across the wire.
"""

import json

import pytest

from repro.core.errors import (
    EvaluationError,
    ParseError,
    PartialResult,
    ResourceExhausted,
    StratificationError,
    ValidationError,
)
from repro.core.parser import parse_atom
from repro.server.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_for_exception,
    error_response,
    ok_response,
)


class TestDecodeFrame:
    def test_minimal_valid_frame(self):
        frame = decode_frame(b'{"op": "ping"}')
        assert frame["op"] == "ping"

    def test_version_defaults_to_current(self):
        assert decode_frame('{"op": "ping"}').get("v", PROTOCOL_VERSION) == 1

    def test_full_frame_round_trips_through_encode(self):
        frame = {"v": 1, "id": 7, "op": "query", "query": "grad(ann)"}
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert decode_frame(line) == frame

    @pytest.mark.parametrize(
        "raw",
        [
            b"\xff\xfe not utf8",
            b"not json at all",
            b"[1, 2, 3]",
            b'"just a string"',
            b"null",
        ],
    )
    def test_malformed_frames_raise_invalid_request(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(raw)
        assert excinfo.value.code == "invalid-request"

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame('{"v": 99, "op": "ping"}')
        assert excinfo.value.code == "invalid-request"
        assert "99" in str(excinfo.value)

    def test_bad_id_type_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame('{"op": "ping", "id": [1]}')
        assert excinfo.value.code == "invalid-request"

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame('{"v": 1, "id": 1}')
        assert excinfo.value.code == "invalid-request"

    def test_unknown_op_gets_its_own_code(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame('{"op": "launch-missiles"}')
        assert excinfo.value.code == "unknown-op"

    def test_string_and_int_ids_accepted(self):
        assert decode_frame('{"op": "ping", "id": "abc"}')["id"] == "abc"
        assert decode_frame('{"op": "ping", "id": 42}')["id"] == 42


class TestResponses:
    def test_ok_response_shape(self):
        response = ok_response(3, {"answer": True})
        assert response == {
            "v": PROTOCOL_VERSION,
            "id": 3,
            "ok": True,
            "result": {"answer": True},
        }

    def test_error_response_shape(self):
        response = error_response("q1", "parse", "boom")
        assert response["ok"] is False
        assert response["id"] == "q1"
        assert response["error"] == {"code": "parse", "message": "boom"}

    def test_error_response_carries_partial(self):
        partial = PartialResult(answers={("ann",)}, steps=5).to_dict()
        response = error_response(1, "exhausted", "over", partial=partial)
        assert response["error"]["partial"]["steps"] == 5

    def test_every_op_and_code_is_lower_kebab(self):
        for word in sorted(OPS | ERROR_CODES):
            assert word == word.lower()

    def test_responses_are_json_lines(self):
        line = encode_frame(error_response(None, "internal", "x"))
        assert line.count(b"\n") == 1
        json.loads(line)


class TestErrorForException:
    def test_exhausted_maps_with_partial(self):
        error = ResourceExhausted(
            "out of steps",
            reason="steps",
            site="topdown.goals",
            partial=PartialResult(answers={("ann",)}, steps=100),
        )
        code, message, partial = error_for_exception(error)
        assert code == "exhausted"
        assert "out of steps" in message
        assert partial["answers"] == [["ann"]]

    @pytest.mark.parametrize(
        "exception, code",
        [
            (ParseError("bad token"), "parse"),
            (ValidationError("not ground"), "parse"),
            (StratificationError("cycle through negation"), "stratification"),
            (EvaluationError("no such engine"), "evaluation"),
            (RuntimeError("surprise"), "internal"),
        ],
    )
    def test_taxonomy_mirrors_cli_exit_ladder(self, exception, code):
        got, _, partial = error_for_exception(exception)
        assert got == code
        assert partial is None

    def test_all_emitted_codes_are_registered(self):
        for exception in (
            ResourceExhausted("x", reason="steps"),
            ParseError("x"),
            StratificationError("x"),
            EvaluationError("x"),
            KeyError("x"),
        ):
            assert error_for_exception(exception)[0] in ERROR_CODES


class TestPartialResultWire:
    def test_empty_round_trip(self):
        partial = PartialResult()
        clone = PartialResult.from_dict(partial.to_dict())
        assert clone.answers is None
        assert clone.atoms is None
        assert clone.steps == 0

    def test_answers_round_trip(self):
        partial = PartialResult(
            answers={("ann",), ("ben", "m2")}, steps=7, atoms_derived=3
        )
        clone = PartialResult.from_dict(
            json.loads(json.dumps(partial.to_dict()))
        )
        assert clone.answers == partial.answers
        assert clone.steps == 7
        assert clone.atoms_derived == 3

    def test_atoms_round_trip_through_parser(self):
        atoms = frozenset(
            {parse_atom("take(ann, m1)"), parse_atom("grad(ben)")}
        )
        partial = PartialResult(atoms=atoms, strata_completed=2)
        clone = PartialResult.from_dict(partial.to_dict())
        assert clone.atoms == atoms
        assert clone.strata_completed == 2

    def test_to_dict_is_deterministic_and_json_safe(self):
        partial = PartialResult(
            answers={("b",), ("a",)},
            atoms=frozenset({parse_atom("q(b)"), parse_atom("q(a)")}),
        )
        once, twice = partial.to_dict(), partial.to_dict()
        assert once == twice
        assert once["answers"] == [["a"], ["b"]]
        assert once["atoms"] == ["q(a)", "q(b)"]
        json.dumps(once)

    def test_from_dict_tolerates_missing_keys(self):
        clone = PartialResult.from_dict({})
        assert clone.answers is None
        assert clone.elapsed == 0.0


class TestResourceExhaustedWire:
    def test_round_trip(self):
        error = ResourceExhausted(
            "query exhausted its step budget",
            reason="steps",
            site="prove.goals",
            partial=PartialResult(answers={("ann",)}, steps=50, elapsed=0.25),
        )
        clone = ResourceExhausted.from_dict(
            json.loads(json.dumps(error.to_dict()))
        )
        assert str(clone) == str(error)
        assert clone.reason == "steps"
        assert clone.site == "prove.goals"
        assert clone.partial.answers == {("ann",)}
        assert clone.partial.elapsed == 0.25

    def test_from_dict_tolerates_sparse_payload(self):
        clone = ResourceExhausted.from_dict({"message": "over"})
        assert str(clone) == "over"
        assert clone.reason == "unknown"
        assert clone.site is None
        assert clone.partial.steps == 0

    def test_from_wire_error_object(self):
        # The REPL rebuilds the exception straight from a response's
        # ``error`` object, which has ``code`` but no ``reason``.
        wire = {
            "code": "exhausted",
            "message": "deadline exceeded",
            "partial": PartialResult(steps=9).to_dict(),
        }
        clone = ResourceExhausted.from_dict(wire)
        assert str(clone) == "deadline exceeded"
        assert clone.partial.steps == 9
