"""Unit tests for the paper-example library builders."""

import pytest

from repro.analysis.classify import classify
from repro.core.ast import Hypothetical
from repro.library import (
    addition_chain_rulebase,
    graph_db,
    graduation_db,
    graduation_rulebase,
    hamiltonian_complement_rulebase,
    hamiltonian_rulebase,
    has_hamiltonian_path,
    order_db,
    order_iteration_rulebase,
    parity_db,
    parity_rulebase,
)


class TestBuilders:
    def test_chain_size(self):
        rb = addition_chain_rulebase(5)
        # 5 chain rules + bottom rule + d definition.
        assert len(rb) == 7
        assert rb.defined_predicates() >= {"a1", "a6", "d"}

    def test_chain_rejects_bad_n(self):
        with pytest.raises(ValueError):
            addition_chain_rulebase(0)

    def test_order_db_shape(self):
        db = order_db(3)
        assert db.rows("first") == {("a1",)}
        assert db.rows("last") == {("a3",)}
        assert db.rows("next") == {("a1", "a2"), ("a2", "a3")}

    def test_order_db_singleton(self):
        db = order_db(1)
        assert db.rows("first") == db.rows("last") == {("a1",)}
        assert db.rows("next") == set()

    def test_order_db_rejects_zero(self):
        with pytest.raises(ValueError):
            order_db(0)

    def test_parity_arities(self):
        assert parity_rulebase(1).arity("a") == 1
        assert parity_rulebase(3).arity("a") == 3
        with pytest.raises(ValueError):
            parity_rulebase(0)

    def test_parity_db(self):
        db = parity_db(["u", "v"])
        assert db.rows("a") == {("u",), ("v",)}

    def test_graph_db(self):
        db = graph_db(["a"], [("a", "a")])
        assert db.rows("node") == {("a",)}
        assert db.rows("edge") == {("a", "a")}

    def test_complement_adds_one_rule(self):
        assert len(hamiltonian_complement_rulebase()) == len(hamiltonian_rulebase()) + 1

    def test_graduation_db_contents(self):
        db = graduation_db()
        assert ("sue", "cs250") in db.rows("take")


class TestHamiltonianOracle:
    def test_path_exists(self):
        assert has_hamiltonian_path(["a", "b", "c"], [("a", "b"), ("b", "c")])

    def test_no_path(self):
        assert not has_hamiltonian_path(["a", "b", "c"], [("a", "b")])

    def test_single_node(self):
        assert has_hamiltonian_path(["a"], [])

    def test_empty_graph(self):
        assert not has_hamiltonian_path([], [])

    def test_direction_matters(self):
        # b -> a is a Hamiltonian path; with only a -> a it is not.
        assert has_hamiltonian_path(["a", "b"], [("b", "a")])
        assert not has_hamiltonian_path(["a", "b"], [("a", "a")])

    def test_ignores_foreign_edges(self):
        assert has_hamiltonian_path(["a", "b"], [("a", "b"), ("x", "y")])


class TestClassifications:
    def test_library_complexity_map(self):
        assert classify(graduation_rulebase()).class_name == "NP"
        assert classify(parity_rulebase()).class_name == "NP"
        assert classify(order_iteration_rulebase()).class_name == "NP"
        assert classify(addition_chain_rulebase(3)).class_name == "NP"

    def test_hypotheses_present(self):
        for rb in (parity_rulebase(), hamiltonian_rulebase()):
            assert rb.has_hypotheses()
            assert any(
                isinstance(premise, Hypothetical)
                for item in rb
                for premise in item.body
            )
