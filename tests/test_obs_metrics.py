"""Tests for the unified metrics registry (repro.obs.metrics)."""

import pytest

from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.datalog import FixpointStats
from repro.engine.model import EngineStats, PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver, ProverStats
from repro.engine.topdown import TopDownEngine, TopDownStats
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, StatsView


class TestInstruments:
    def test_counter(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(3)
        counter.value += 2
        assert counter.value == 6

    def test_gauge_set_max(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9

    def test_histogram_summary(self):
        histogram = Histogram("sizes")
        for value in (4, 2, 6):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 2 and histogram.max == 6
        assert histogram.mean == pytest.approx(4.0)

    def test_empty_histogram_mean(self):
        assert Histogram("empty").mean == 0.0


class TestRegistry:
    def test_get_or_create_shares_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_snapshot_sorted_and_zero_filtered(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a")
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a"] == 0
        assert "a" not in registry.snapshot(zeros=False)
        assert registry.snapshot(zeros=False)["h"]["count"] == 1

    def test_render_table(self):
        registry = MetricsRegistry()
        assert registry.render_table() == "(no metrics recorded)"
        registry.counter("prove.sigma_goals").inc(7)
        registry.histogram("model.model_size").observe(3)
        table = registry.render_table()
        assert "prove.sigma_goals" in table and "7" in table
        assert "n=1" in table

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        # The bound object survives: further increments are visible.
        counter.inc()
        assert registry.snapshot()["c"] == 1

    def test_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        right.gauge("g").set(9)
        left.gauge("g").set(4)
        left.histogram("h").observe(1)
        right.histogram("h").observe(5)
        left.merge(right)
        snap = left.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 9
        assert snap["h"]["count"] == 2 and snap["h"]["max"] == 5.0

    def test_len_and_iter(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        assert {m.name for m in registry} == {"a", "b"}


class TestStatsViews:
    """The deprecated per-engine structs read through to the registry."""

    def test_standalone_fixpoint_stats(self):
        stats = FixpointStats()
        stats.rounds += 2
        stats.derived = 7
        assert stats.rounds == 2
        assert stats.registry.snapshot()["fixpoint.derived"] == 7
        assert "rounds=2" in repr(stats)

    def test_view_reflects_engine_registry(self):
        rulebase = parse_program("p(X) :- q(X).")
        engine = TopDownEngine(rulebase)
        engine.ask(Database.from_relations({"q": ["a"]}), "p(a)")
        assert engine.stats.goals >= 1
        assert engine.stats.goals == engine.metrics.snapshot()["topdown.goals"]

    def test_all_views_snapshot(self):
        for view_cls in (FixpointStats, EngineStats, ProverStats, TopDownStats):
            view = view_cls()
            snap = view.snapshot()
            assert snap and all(value == 0 for value in snap.values())

    def test_shared_registry_across_engines(self):
        """One registry can serve several engines (the REPL's usage)."""
        registry = MetricsRegistry()
        rulebase = parse_program("p(X) :- q(X).")
        db = Database.from_relations({"q": ["a"]})
        LinearStratifiedProver(rulebase, metrics=registry).ask(db, "p(a)")
        PerfectModelEngine(rulebase, metrics=registry).ask(db, "p(a)")
        snap = registry.snapshot(zeros=False)
        assert any(name.startswith("prove.") for name in snap)
        assert any(name.startswith("model.") for name in snap)

    def test_custom_view_subclass(self):
        class View(StatsView):
            _counter_fields = {"hits": "x.hits"}
            _gauge_fields = {"depth": "x.depth"}

        view = View()
        view.hits += 1
        view.depth = 4
        assert view.snapshot() == {"hits": 1, "depth": 4}
