"""Direct checks of the inference system (Definition 3).

The paper defines ``R, DB |- .`` by three rules and presents every
query in two equivalent ways: at the meta level (evaluate over a
manually extended database) and at the object level (a hypothetical
premise).  These tests verify the equivalence *as an equation between
two API calls* on all engines, plus the domain conventions.
"""

import pytest

from repro.core.database import Database
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine

ENGINES = [PerfectModelEngine, LinearStratifiedProver, TopDownEngine]


@pytest.mark.parametrize("engine_class", ENGINES)
class TestDefinition3:
    """The three inference rules, one at a time."""

    def test_rule1_database_membership(self, engine_class):
        engine = engine_class(parse_program("unused :- nothing."))
        db = Database([atom("take", "tony", "cs250")])
        assert engine.ask(db, "take(tony, cs250)")
        assert not engine.ask(db, "take(tony, cs999)")

    def test_rule2_hypothetical_equals_meta_level(self, engine_class):
        # R, DB |- A[add:B]  iff  R, DB + {B} |- A  — Example 1's two
        # formulations, checked as an equation.
        rules = parse_program(
            "grad(S) :- take(S, his101), take(S, eng201)."
        )
        engine = engine_class(rules)
        db = Database([atom("take", "tony", "his101")])
        addition = atom("take", "tony", "eng201")
        object_level = engine.ask(db, "grad(tony)[add: take(tony, eng201)]")
        meta_level = engine.ask(db.with_facts(addition), "grad(tony)")
        assert object_level == meta_level == True  # noqa: E712

    def test_rule2_equivalence_on_negative_case(self, engine_class):
        rules = parse_program("grad(S) :- take(S, his101), take(S, eng201).")
        engine = engine_class(rules)
        db = Database()
        addition = atom("take", "tony", "eng201")
        assert engine.ask(db, "grad(tony)[add: take(tony, eng201)]") == engine.ask(
            db.with_facts(addition), "grad(tony)"
        )

    def test_rule3_ground_substitution_over_domain(self, engine_class):
        # Variables range over dom(R, DB): constants of rules + db.
        rules = parse_program("some :- p(X).")
        engine = engine_class(rules)
        assert engine.ask(Database([atom("p", "a")]), "some")
        assert not engine.ask(Database([atom("q", "a")]), "some")

    def test_rule_constants_are_in_the_domain(self, engine_class):
        # 'c' appears only in the rulebase; it must still be a legal
        # grounding value (dom(R, DB) includes rule constants).
        rules = parse_program(
            """
            target :- probe(X)[add: mark(X)], special(X).
            probe(X) :- mark(X).
            special(c).
            """
        )
        engine = engine_class(rules)
        assert engine.ask(Database(), "target")

    def test_nested_hypotheticals_compose(self, engine_class):
        # a needs b and c: two nested additions reach DB + {b, c}.
        rules = parse_program(
            """
            a :- b, c.
            outer :- inner[add: b].
            inner :- a[add: c].
            """
        )
        engine = engine_class(rules)
        assert engine.ask(Database(), "outer")
        assert not engine.ask(Database(), "inner")


class TestDeletionMetaLevelEquation:
    """The [4] extension obeys its defining equation on the top-down
    engine: R, DB |- A[del: C] iff R, DB - {C} |- A."""

    RULES = parse_program(
        """
        alarm :- sensor_a.
        alarm :- sensor_b.
        quiet :- ~alarm.
        """
    )

    @pytest.mark.parametrize(
        "facts",
        [[], ["sensor_a"], ["sensor_b"], ["sensor_a", "sensor_b"]],
    )
    @pytest.mark.parametrize("removed", ["sensor_a", "sensor_b"])
    @pytest.mark.parametrize("goal", ["alarm", "quiet"])
    def test_equation(self, facts, removed, goal):
        from repro.engine.topdown import TopDownEngine

        engine = TopDownEngine(self.RULES)
        db = Database([atom(fact) for fact in facts])
        object_level = engine.ask(db, f"{goal}[del: {removed}]")
        meta_level = engine.ask(db.without_facts(atom(removed)), goal)
        assert object_level == meta_level


@pytest.mark.parametrize("engine_class", ENGINES)
class TestNegationByFailure:
    def test_naf_definition(self, engine_class):
        # R, DB |- ~phi iff R, DB |/- phi.
        rules = parse_program("p :- q.")
        engine = engine_class(rules)
        assert engine.ask(Database(), "~p")
        assert not engine.ask(Database([atom("q")]), "~p")

    def test_naf_sees_hypothetical_consequences(self, engine_class):
        # ~ is evaluated at the *current* database: inside a
        # hypothetical context the negation flips.
        rules = parse_program(
            """
            quiet :- ~noise.
            noise :- source.
            probe :- quiet[add: source].
            """
        )
        engine = engine_class(rules)
        assert engine.ask(Database(), "quiet")
        assert not engine.ask(Database(), "probe")

    def test_example2_meta_level_equation(self, engine_class):
        # "those s such that exists c: R, DB + take(s, c) |- grad(s)"
        # computed by brute force must equal the object-level answers.
        rules = parse_program(
            """
            grad(S) :- take(S, m1), take(S, m2).
            candidate(S) :- student(S), grad(S)[add: take(S, C)].
            """
        )
        engine = engine_class(rules)
        db = Database.from_relations(
            {
                "student": ["ann", "ben"],
                "take": [("ann", "m1")],
            }
        )
        object_level = engine.answers(db, "candidate(S)")

        domain = [c.value for c in engine.domain(db)]
        meta_level = set()
        for student in ("ann", "ben"):
            for course in domain:
                extended = db.with_facts(atom("take", student, course))
                fresh = engine_class(rules)
                if fresh.ask(extended, f"grad({student})"):
                    meta_level.add((student,))
                    break
        assert object_level == meta_level == {("ann",)}
