"""The ``hypodatalog check`` command and the REPL ``:check`` command."""

import json

import pytest

from repro.cli import main
from repro.repl import Repl

UNSAFE = "p(X) :- marker.\n"
CLEAN = "out(X) :- q(X).\n"
BROKEN = "p(X :- q(X).\n"
CYCLIC = "a :- ~b.\nb :- ~a.\n"


@pytest.fixture
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


class TestCheckCommand:
    def test_warnings_pass_by_default(self, write, capsys):
        assert main(["check", write("u.dl", UNSAFE)]) == 0
        out = capsys.readouterr().out
        assert "warning[unsafe-head]" in out
        assert "u.dl:1:1" in out

    def test_fail_on_warning(self, write):
        assert main(["check", write("u.dl", UNSAFE), "--fail-on", "warning"]) == 1

    def test_errors_fail_by_default(self, write):
        assert main(["check", write("c.dl", CYCLIC)]) == 1

    def test_fail_on_none_never_fails(self, write):
        assert main(["check", write("c.dl", CYCLIC), "--fail-on", "none"]) == 0

    def test_parse_error_is_reported_not_crashed(self, write, capsys):
        assert main(["check", write("b.dl", BROKEN), "--fail-on", "error"]) == 1
        assert "parse-error" in capsys.readouterr().out

    def test_multiple_files_aggregate(self, write, capsys):
        first = write("a.dl", UNSAFE)
        second = write("b.dl", CLEAN)
        assert main(["check", first, second]) == 0
        out = capsys.readouterr().out
        assert "a.dl" in out and "b.dl" in out

    def test_json_format(self, write, capsys):
        assert main(["check", write("u.dl", UNSAFE), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {entry["code"] for entry in payload}
        assert "unsafe-head" in codes

    def test_sarif_format(self, write, capsys):
        assert main(["check", write("u.dl", UNSAFE), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "hypodatalog"

    def test_severity_override_changes_gate(self, write):
        path = write("u.dl", UNSAFE)
        assert main(["check", path, "--severity", "unsafe-head=error"]) == 1

    def test_disable_suppresses_code(self, write, capsys):
        path = write("u.dl", UNSAFE)
        assert (
            main(
                [
                    "check",
                    path,
                    "--disable",
                    "unsafe-head",
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )
        assert "unsafe-head" not in capsys.readouterr().out

    def test_bad_code_name_is_usage_error(self, write):
        assert main(["check", write("u.dl", UNSAFE), "--disable", "nope"]) == 2

    def test_bad_severity_pair_is_usage_error(self, write):
        assert main(["check", write("u.dl", UNSAFE), "--severity", "x"]) == 2

    def test_query_seeds_adornments(self, write, capsys):
        rules = (
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
        )
        path = write("r.dl", rules)
        assert main(["check", path, "-q", "reach(a, Y)", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(e["code"] != "free-recursive-call" for e in payload)

    def test_verbose_includes_rule_text(self, write, capsys):
        assert main(["check", write("u.dl", UNSAFE), "--verbose"]) == 0
        assert "p(X) :- marker." in capsys.readouterr().out


class TestLintFormats:
    def test_lint_json(self, write, capsys):
        assert main(["lint", write("u.dl", UNSAFE), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["code"] == "unsafe-head" for entry in payload)

    def test_lint_sarif(self, write, capsys):
        assert main(["lint", write("u.dl", UNSAFE), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"

    def test_lint_text_hides_rule_unless_verbose(self, write, capsys):
        main(["lint", write("u.dl", UNSAFE)])
        plain = capsys.readouterr().out
        assert "p(X) :- marker." not in plain
        main(["lint", write("u.dl", UNSAFE), "--verbose"])
        verbose = capsys.readouterr().out
        assert "p(X) :- marker." in verbose


class TestReplCheck:
    def test_check_text(self):
        repl = Repl()
        repl.feed("p(X) :- marker.")
        out = repl.feed(":check")
        assert "unsafe-head" in out

    def test_check_json(self):
        repl = Repl()
        repl.feed("p(X) :- marker.")
        payload = json.loads(repl.feed(":check json"))
        assert any(entry["code"] == "unsafe-head" for entry in payload)

    def test_check_sarif(self):
        repl = Repl()
        repl.feed("p(X) :- marker.")
        log = json.loads(repl.feed(":check sarif"))
        assert log["version"] == "2.1.0"

    def test_check_bad_format(self):
        repl = Repl()
        assert "error" in repl.feed(":check yaml")

    def test_check_clean(self):
        repl = Repl()
        repl.feed("out(X) :- q(X).")
        out = repl.feed(":check")
        assert "unsafe-head" not in out

    def test_help_mentions_check(self):
        assert ":check" in Repl().feed(":help")
