"""Integration tests: every worked example of the paper, end to end.

Each example is exercised on both engines (the reference perfect-model
evaluator and the Section 5.2 PROVE cascade) whenever the rulebase is
linearly stratified; Examples 3 and 10 are outside the linear fragment
and run on the reference engine only.
"""

import pytest

from repro.analysis.classify import classify
from repro.analysis.stratify import (
    is_linearly_stratified,
    linear_stratification,
)
from repro.core.database import Database
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine
from repro.library import (
    addition_chain_rulebase,
    degree_db,
    degree_rulebase,
    example9_rulebase,
    example10_rulebase,
    graduation_db,
    graduation_rulebase,
    graph_db,
    hamiltonian_complement_rulebase,
    hamiltonian_rulebase,
    has_hamiltonian_path,
    order_db,
    order_iteration_rulebase,
    parity_db,
    parity_rulebase,
)

BOTH_ENGINES = [PerfectModelEngine, LinearStratifiedProver, TopDownEngine]


@pytest.mark.parametrize("engine_class", BOTH_ENGINES)
class TestExamples1And2:
    """University policy: hypothetical queries (Examples 1-2)."""

    def test_example1_tony_with_cs250(self, engine_class):
        engine = engine_class(graduation_rulebase())
        assert engine.ask(graduation_db(), "grad(tony)[add: take(tony, cs250)]")

    def test_example1_wrong_course_does_not_help(self, engine_class):
        engine = engine_class(graduation_rulebase())
        assert not engine.ask(
            graduation_db(), "grad(pat)[add: take(pat, basketweaving)]"
        )

    def test_example2_within_one_course(self, engine_class):
        engine = engine_class(graduation_rulebase())
        # "Retrieve those students who could graduate if they took one
        # more course": tony (misses cs250) and sue (already done).
        assert engine.answers(graduation_db(), "within_one(S)") == {
            ("tony",),
            ("sue",),
        }

    def test_example2_as_existential_query(self, engine_class):
        engine = engine_class(graduation_rulebase())
        assert engine.ask(graduation_db(), "grad(tony)[add: take(tony, C)]")
        assert not engine.ask(graduation_db(), "grad(pat)[add: take(pat, C)]")


class TestExample3:
    """The math-and-physics degree (hypothetical premises in rules).

    Outside the linearly stratified fragment (within1/grad are mutually
    recursive, non-linearly), so it runs on the goal-directed
    :class:`TopDownEngine`: the bottom-up reference engine would have
    to materialize whole models for unboundedly many enlarged
    databases (see its docstring).
    """

    def test_not_linearly_stratifiable(self):
        assert not is_linearly_stratified(degree_rulebase())
        assert classify(degree_rulebase()).class_name == "PSPACE"

    def test_joint_degree(self):
        engine = TopDownEngine(degree_rulebase())
        rows = engine.answers(degree_db(), "grad(S, mathphys)")
        assert ("ada",) in rows
        assert ("bob",) in rows
        assert ("cyd",) not in rows

    def test_within1_semantics(self):
        engine = TopDownEngine(degree_rulebase())
        assert engine.ask(degree_db(), "within1(ada, math)")
        assert engine.ask(degree_db(), "within1(ada, phys)")
        assert not engine.ask(degree_db(), "within1(cyd, phys)")


@pytest.mark.parametrize("engine_class", BOTH_ENGINES)
class TestExample4:
    """Chained additions: R, DB |- A_i iff R, DB + {B_i..B_n} |- D."""

    def test_a1_provable_from_empty(self, engine_class):
        engine = engine_class(addition_chain_rulebase(4))
        assert engine.ask(Database(), "a1")

    def test_later_entries_need_earlier_additions(self, engine_class):
        engine = engine_class(addition_chain_rulebase(4))
        for index in (2, 3, 4, 5):
            assert not engine.ask(Database(), f"a{index}")

    def test_iff_with_primed_database(self, engine_class):
        engine = engine_class(addition_chain_rulebase(3))
        db = Database([atom("b1"), atom("b2")])
        assert engine.ask(db, "a3")
        assert engine.ask(db, "a1")
        assert not engine.ask(Database([atom("b2")]), "a3")


@pytest.mark.parametrize("engine_class", BOTH_ENGINES)
class TestExample5:
    """Iteration along a stored linear order."""

    def test_iterates_whole_order(self, engine_class):
        engine = engine_class(order_iteration_rulebase())
        assert engine.ask(order_db(4), "a")

    def test_partial_iteration_fails(self, engine_class):
        # Starting in the middle of the order skips b(a1).
        engine = engine_class(order_iteration_rulebase())
        assert not engine.ask(order_db(3), "ap(a2)")

    def test_singleton_order(self, engine_class):
        engine = engine_class(order_iteration_rulebase())
        assert engine.ask(order_db(1), "a")


@pytest.mark.parametrize("engine_class", BOTH_ENGINES)
class TestExample6:
    """EVEN iff |A| is even."""

    @pytest.mark.parametrize("size", range(7))
    def test_parity(self, engine_class, size):
        engine = engine_class(parity_rulebase())
        db = parity_db([f"x{i}" for i in range(size)])
        assert engine.ask(db, "even") is (size % 2 == 0)
        assert engine.ask(db, "odd") is (size % 2 == 1)

    def test_binary_relation_parity(self, engine_class):
        engine = engine_class(parity_rulebase(arity=2))
        db = Database.from_relations({"a": [("x", "y"), ("y", "x"), ("x", "x")]})
        assert engine.ask(db, "odd")

    def test_order_independence_under_renaming(self, engine_class):
        # Example 6's key property: every copying order gives the same
        # answer; renaming the domain must not change it.
        engine = engine_class(parity_rulebase())
        db = parity_db(["a", "b", "c", "d"])
        renamed = db.rename({"a": "d", "d": "a", "b": "c", "c": "b"})
        assert engine.ask(db, "even") == engine.ask(renamed, "even")


@pytest.mark.parametrize("engine_class", BOTH_ENGINES)
class TestExample7:
    """YES iff the graph has a directed Hamiltonian path."""

    CASES = [
        (["a"], []),
        (["a", "b"], []),
        (["a", "b"], [("a", "b")]),
        (["a", "b", "c"], [("a", "b"), ("b", "c")]),
        (["a", "b", "c"], [("a", "b"), ("a", "c")]),
        (["a", "b", "c"], [("a", "b"), ("b", "a"), ("b", "c")]),
        (["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]),
        (["a", "b", "c", "d"], [("a", "b"), ("c", "d")]),
    ]

    @pytest.mark.parametrize("nodes,edges", CASES)
    def test_against_independent_oracle(self, engine_class, nodes, edges):
        engine = engine_class(hamiltonian_rulebase())
        expected = has_hamiltonian_path(nodes, edges)
        assert engine.ask(graph_db(nodes, edges), "yes") is expected

    def test_classified_np(self, engine_class):
        assert classify(hamiltonian_rulebase()).class_name == "NP"


@pytest.mark.parametrize("engine_class", BOTH_ENGINES)
class TestExample8:
    """NO <- ~YES decides the complement."""

    def test_no_iff_not_yes(self, engine_class):
        engine = engine_class(hamiltonian_complement_rulebase())
        for nodes, edges in TestExample7.CASES:
            db = graph_db(nodes, edges)
            expected = has_hamiltonian_path(nodes, edges)
            assert engine.ask(db, "yes") is expected
            assert engine.ask(db, "no") is (not expected)

    def test_one_extra_rule_one_extra_stratum(self, engine_class):
        assert classify(hamiltonian_rulebase()).strata == 1
        assert classify(hamiltonian_complement_rulebase()).strata == 2


class TestExample9:
    """Three strata of alternating linear recursion and negation."""

    def test_three_strata(self):
        assert linear_stratification(example9_rulebase()).k == 3

    @pytest.mark.parametrize("engine_class", BOTH_ENGINES)
    def test_semantics_of_the_cascade(self, engine_class):
        engine = engine_class(example9_rulebase())
        # With nothing in the database: a1 fails (needs d1 or b1 path),
        # so ~a1 holds, so a2 needs d2; etc.
        assert not engine.ask(Database(), "a1")
        assert not engine.ask(Database(), "a2")
        # d1 makes a1 true.
        assert engine.ask(Database([atom("d1")]), "a1")
        # d2 alone: a1 false so ~a1 holds, a2 true.
        assert engine.ask(Database([atom("d2")]), "a2")
        # d2 with d1: a1 true, so a2's negation rule fails.
        assert not engine.ask(Database([atom("d1"), atom("d2")]), "a2")
        # a3 via d3 requires ~a2.
        assert engine.ask(Database([atom("d3")]), "a3")
        assert not engine.ask(Database([atom("d3"), atom("d2")]), "a3")
        # And the linear hypothetical rules: b1 + c1-chain closes a1.
        assert engine.ask(Database([atom("b1"), atom("c1"), atom("d1")]), "a1")


class TestExample10:
    """H-stratified but not linearly stratified."""

    def test_rejected_by_lemma1(self):
        assert not is_linearly_stratified(example10_rulebase())

    def test_still_evaluable_by_reference_engine(self):
        engine = PerfectModelEngine(example10_rulebase())
        # a1 :- ~b1 with b1 absent: a1 holds.
        assert engine.ask(Database(), "a1")

    def test_classified_pspace(self):
        assert classify(example10_rulebase()).class_name == "PSPACE"
