"""Unit tests for hypothetical orders and tuple counters (Section 6.2)."""

import pytest

from repro.analysis.classify import classify
from repro.core.ast import Rulebase
from repro.core.database import Database
from repro.core.errors import CompilationError
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.stratified import perfect_model
from repro.queries.order import (
    counter_rules,
    domain_parity_rulebase,
    order_assertion_rules,
)


def base_order(names):
    """FIRST1/NEXT1/LAST1 facts for an explicit order."""
    return Database.from_relations(
        {
            "first1": [names[0]],
            "last1": [names[-1]],
            "next1": list(zip(names, names[1:])),
        }
    )


class TestCounterRules:
    @pytest.mark.parametrize("arity", [1, 2, 3])
    def test_counter_is_a_chain_of_length_n_to_the_l(self, arity):
        names = ["a", "b", "c"]
        model = perfect_model(Rulebase(counter_rules(arity)), base_order(names))
        firsts = list(model.relation("first"))
        lasts = list(model.relation("last"))
        assert len(firsts) == len(lasts) == 1
        successor = {}
        for row in model.relation("next"):
            successor[row[:arity]] = row[arity:]
        # Walk from FIRST: must visit n^arity distinct values, end at LAST.
        current = firsts[0]
        seen = {current}
        while current in successor:
            current = successor[current]
            assert current not in seen, "counter revisits a value"
            seen.add(current)
        assert len(seen) == len(names) ** arity
        assert current == lasts[0]

    def test_arity_must_be_positive(self):
        with pytest.raises(CompilationError):
            counter_rules(0)

    def test_singleton_domain(self):
        model = perfect_model(Rulebase(counter_rules(2)), base_order(["a"]))
        assert len(model.relation("first")) == 1
        assert len(model.relation("next")) == 0


class TestOrderAssertion:
    def test_rules_are_linear_and_constant_free(self):
        rules = Rulebase(order_assertion_rules(atom("accept")))
        assert rules.is_constant_free
        assert classify(rules).class_name == "NP"

    def test_goal_sees_a_complete_order(self):
        # The inner goal 'ok' checks that first1/last1 both exist and
        # the asserted chain reaches from first to last.
        from repro.core.parser import parse_program

        rb = Rulebase(order_assertion_rules(atom("ok"))) + parse_program(
            """
            ok :- first1(X), reach_last(X).
            reach_last(X) :- last1(X).
            reach_last(X) :- next1(X, Y), reach_last(Y).
            """
        )
        engine = LinearStratifiedProver(rb)
        db = Database.from_relations({"dom": ["a", "b", "c"]})
        assert engine.ask(db, "yes")

    def test_empty_domain_cannot_assert(self):
        rb = domain_parity_rulebase()
        engine = LinearStratifiedProver(rb)
        assert not engine.ask(Database.from_relations({"other": ["x"]}), "domeven")


class TestDomainParity:
    @pytest.mark.parametrize("engine_class", [PerfectModelEngine, LinearStratifiedProver])
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_parity_matches_cardinality(self, engine_class, size):
        rb = domain_parity_rulebase()
        db = Database.from_relations({"dom": [f"e{i}" for i in range(size)]})
        engine = engine_class(rb)
        assert engine.ask(db, "domeven") is (size % 2 == 0)

    def test_order_independence_under_renaming(self):
        # Section 6.2.3: re-ordering the domain == renaming; the answer
        # must be identical.
        rb = domain_parity_rulebase()
        engine = LinearStratifiedProver(rb)
        db = Database.from_relations({"dom": ["a", "b", "c", "d"]})
        renamed = db.rename({"a": "c", "c": "a", "b": "d", "d": "b"})
        assert engine.ask(db, "domeven") == engine.ask(renamed, "domeven")

    def test_classified_np(self):
        assert classify(domain_parity_rulebase()).class_name == "NP"
