"""Tests for program slicing (dependency cones)."""

import pytest

from repro.analysis.slicing import dependency_cone, slice_rulebase
from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.topdown import TopDownEngine
from repro.library import (
    graph_db,
    hamiltonian_complement_rulebase,
    parity_db,
    parity_rulebase,
)


class TestCone:
    def test_transitive_reachability(self):
        rb = parse_program("a :- b. b :- c. unrelated :- d.")
        assert dependency_cone(rb, ["a"]) == {"a", "b", "c"}

    def test_hypothetical_goal_edges_count(self):
        rb = parse_program("a :- b[add: m]. b :- m.")
        assert dependency_cone(rb, ["a"]) == {"a", "b", "m"}

    def test_negative_edges_count(self):
        rb = parse_program("a :- ~b. b :- c.")
        assert dependency_cone(rb, ["a"]) == {"a", "b", "c"}

    def test_undefined_goal(self):
        rb = parse_program("a :- b.")
        assert dependency_cone(rb, ["ghost"]) == {"ghost"}

    def test_multiple_goals(self):
        rb = parse_program("a :- b. x :- y.")
        assert dependency_cone(rb, ["a", "x"]) == {"a", "b", "x", "y"}


class TestSliceSemantics:
    def test_drops_unrelated_rules(self):
        rb = parse_program("a :- b. b :- c. unrelated :- d.")
        result = slice_rulebase(rb, ["a"])
        assert result.dropped_rules == 1
        assert len(result.rulebase) == 2

    def test_constants_preserved_flag(self):
        rb = parse_program("a :- b(k). other :- c(z).")
        result = slice_rulebase(rb, ["a"])
        assert not result.constants_preserved  # z was dropped
        full = slice_rulebase(rb, ["a", "other"])
        assert full.constants_preserved

    def test_answers_unchanged_on_parity(self):
        rb = parity_rulebase() + parse_program("noise :- static(X).")
        result = slice_rulebase(rb, ["even", "odd"])
        assert result.dropped_rules == 1
        assert result.constants_preserved
        db = parity_db(["x", "y", "z"])
        full = TopDownEngine(rb)
        sliced = TopDownEngine(result.rulebase)
        for goal in ("even", "odd"):
            assert full.ask(db, goal) == sliced.ask(db, goal)

    def test_answers_unchanged_on_hamiltonian_complement(self):
        rb = hamiltonian_complement_rulebase()
        result = slice_rulebase(rb, ["no"])
        # 'no' depends on 'yes' and everything below: nothing droppable.
        assert result.dropped_rules == 0
        partial = slice_rulebase(rb, ["select"])
        assert partial.dropped_rules == 4  # keeps only the select rule
        db = graph_db(["a", "b"], [("a", "b")])
        assert TopDownEngine(partial.rulebase).answers(db, "select(Y)") == (
            TopDownEngine(rb).answers(db, "select(Y)")
        )
