"""Profile surface tests: golden trace, CLI commands, REPL commands."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.database import Database
from repro.core.parser import parse_program
from repro.obs.export import to_jsonl, validate_chrome_trace
from repro.obs.profile import profile_query
from repro.repl import Repl

_ROOT = Path(__file__).resolve().parent.parent
_GRADUATION = _ROOT / "examples" / "rulebases" / "graduation.dl"
_GOLDEN = Path(__file__).resolve().parent / "golden" / "trace_graduation.jsonl"


@pytest.fixture
def graduation():
    rulebase = parse_program(
        _GRADUATION.read_text(), "examples/rulebases/graduation.dl"
    )
    db = Database.from_relations(
        {"student": ["tony"], "take": [("tony", "his101"), ("tony", "eng201")]}
    )
    return rulebase, db


class TestGoldenTrace:
    """The structural trace of a fixed rulebase is pinned: span kinds,
    labels, nesting, source locations, plan annotations, and counter
    values must not drift silently.  Timings are redacted."""

    def test_matches_golden(self, graduation):
        rulebase, db = graduation
        report = profile_query(rulebase, db, "within_one(tony)", engine="prove")
        text = to_jsonl(report.root, metrics=report.metrics, redact_timings=True)
        assert text + "\n" == _GOLDEN.read_text()

    def test_golden_covers_taxonomy(self):
        kinds = {
            json.loads(line)["kind"]
            for line in _GOLDEN.read_text().splitlines()
            if json.loads(line)["type"] in ("span", "event")
        }
        assert {
            "trace",
            "query",
            "goal",
            "rule",
            "plan",
            "hypothesis",
            "delta",
            "stratum",
        } <= kinds


class TestProfileQuery:
    def test_answers_for_variable_pattern(self, graduation):
        rulebase, db = graduation
        report = profile_query(rulebase, db, "within_one(S)")
        assert report.result == {("tony",)}
        assert "tony" in report.result_text()

    def test_ask_for_ground_query(self, graduation):
        rulebase, db = graduation
        report = profile_query(rulebase, db, "within_one(tony)")
        assert report.result is True
        assert report.result_text() == "yes"

    def test_render_sections(self, graduation):
        rulebase, db = graduation
        report = profile_query(rulebase, db, "within_one(tony)")
        text = report.render()
        assert "-- spans" in text and "-- metrics" in text
        assert "profile: within_one(tony)" in text
        assert "prove.sigma_goals" in text


class TestProfileCommand:
    def test_prints_report(self, capsys, tmp_path):
        db = tmp_path / "facts.db"
        db.write_text("student(tony).\ntake(tony, his101).\ntake(tony, eng201).\n")
        code = main(
            ["profile", str(_GRADUATION), "-q", "within_one(tony)", "-d", str(db)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "answer:  yes" in out
        assert "hypothesis" in out and "stratum" in out
        assert "prove.sigma_goals" in out

    def test_trace_out_is_valid_chrome_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "profile",
                str(_GRADUATION),
                "-q",
                "grad(S)",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["generator"] == "hypodatalog"

    def test_jsonl_out(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "profile",
                str(_GRADUATION),
                "-q",
                "grad(S)",
                "--jsonl-out",
                str(out_path),
            ]
        )
        assert code == 0
        records = [
            json.loads(line) for line in out_path.read_text().splitlines()
        ]
        assert records[0]["type"] == "span"
        assert records[-1]["type"] == "metrics"

    def test_no_answer_still_exits_zero(self, capsys):
        assert main(["profile", str(_GRADUATION), "-q", "grad(nobody)"]) == 0
        assert "answer:  no" in capsys.readouterr().out

    def test_validate_module(self, tmp_path, capsys):
        from repro.obs import validate

        trace_path = tmp_path / "trace.json"
        main(
            [
                "profile",
                str(_GRADUATION),
                "-q",
                "grad(S)",
                "--trace-out",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        assert validate.main([str(trace_path)]) == 0
        assert "ok (" in capsys.readouterr().out

    def test_validate_module_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        from repro.obs import validate

        assert validate.main([str(bad)]) == 1


class TestQueryTraceOut:
    def test_query_command_writes_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        db = tmp_path / "facts.db"
        db.write_text(
            "take(tony, his101).\ntake(tony, eng201).\ntake(tony, cs250).\n"
        )
        code = main(
            [
                "query",
                str(_GRADUATION),
                "grad(tony)",
                "-d",
                str(db),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "yes"
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []

    def test_answers_command_writes_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(
            ["answers", str(_GRADUATION), "grad(S)", "--trace-out", str(trace_path)]
        )
        assert code == 0
        assert trace_path.exists()

    def test_model_command_writes_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        rules = tmp_path / "rules.dl"
        rules.write_text("p(X) :- q(X).\n")
        db = tmp_path / "facts.db"
        db.write_text("q(a).\n")
        code = main(
            ["model", str(rules), "-d", str(db), "--trace-out", str(trace_path)]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert any(
            event["cat"] == "model" for event in payload["traceEvents"]
        )


class TestReplObservability:
    def test_profile_command(self):
        repl = Repl()
        repl.feed("grad(S) :- take(S, cs452).")
        repl.feed("take(tony, cs452).")
        out = repl.feed(":profile grad(tony)")
        assert "answer:  yes" in out
        assert "-- spans" in out and "-- metrics" in out

    def test_profile_requires_argument(self):
        assert "usage" in Repl().feed(":profile")

    def test_stats_accumulate_across_rebuilds(self):
        repl = Repl()
        repl.feed("grad(S) :- take(S, cs452).")
        repl.feed("take(tony, cs452).")
        repl.feed("?- grad(tony).")
        # Asserting a fact invalidates the session; counters must survive.
        repl.feed("take(ann, cs452).")
        repl.feed("?- grad(ann).")
        stats = repl.feed(":stats")
        assert "prove." in stats

    def test_stats_reset(self):
        repl = Repl()
        repl.feed("p(a).")
        repl.feed("?- p(a).")
        assert repl.feed(":stats reset") == "metrics reset"
        assert repl.feed(":stats") == "(no metrics recorded)"

    def test_stats_usage_error(self):
        assert "usage" in Repl().feed(":stats bogus")

    def test_help_lists_new_commands(self):
        out = Repl().feed(":help")
        assert ":profile" in out and ":stats" in out
