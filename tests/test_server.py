"""Tests for the fault-tolerant query server (docs/SERVER.md).

Each test runs a real :class:`~repro.server.server.HypoDatalogServer`
on an ephemeral port inside its own event loop and speaks the JSON
lines protocol over actual sockets, so framing, backpressure, and
drain behaviour are exercised end to end.  The invariants under test:

* a malformed frame poisons one request, never the connection;
* a poisoned connection never poisons the server;
* budgets are clamped by server ceilings, and exhausted requests
  answer with sound partial results;
* the admission gate rejects overload fast, before any parsing;
* network failpoints degrade the smallest possible unit;
* SIGTERM-style drain finishes in-flight work or cancels it into
  well-formed ``exhausted`` responses.
"""

import asyncio
import itertools
import json
from contextlib import asynccontextmanager

import pytest

from repro.core.errors import ResourceExhausted
from repro.core.parser import parse_database, parse_program
from repro.library import graph_db, hamiltonian_rulebase
from repro.server import HypoDatalogServer, ServerConfig, SharedRulebase
from repro.server.protocol import encode_frame
from repro.testing import failpoints

RULES = "grad(S) :- take(S, m1), take(S, m2)."
FACTS = "take(ann, m1). take(ben, m1). take(ben, m2)."


def make_shared(rules=RULES, facts=FACTS, rulebase=None, db=None, **kwargs):
    rulebase = rulebase if rulebase is not None else parse_program(rules)
    db = db if db is not None else parse_database(facts)
    return SharedRulebase(rulebase, db, **kwargs)


@asynccontextmanager
async def serving(shared=None, **config_kwargs):
    """One live server on an ephemeral port; drained on exit."""
    shared = shared if shared is not None else make_shared()
    server = HypoDatalogServer(shared, ServerConfig(port=0, **config_kwargs))
    await server.start()
    try:
        yield server
    finally:
        if not server._draining:
            await server.shutdown(drain_timeout=5.0)


class WireClient:
    """A minimal async JSON-lines client for the tests."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def open(cls, server):
        reader, writer = await asyncio.open_connection(*server.address)
        return cls(reader, writer)

    async def call(self, op, **params):
        frame = {"v": 1, "id": next(self._ids), "op": op}
        frame.update(
            (key, value) for key, value in params.items() if value is not None
        )
        await self.send_raw(encode_frame(frame))
        return await self.read()

    async def send_raw(self, data: bytes):
        self.writer.write(data)
        await self.writer.drain()

    async def read(self):
        line = await asyncio.wait_for(self.reader.readline(), 10.0)
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def at_eof(self) -> bool:
        line = await asyncio.wait_for(self.reader.readline(), 10.0)
        return line == b""

    def close(self):
        self.writer.close()


def run(coroutine):
    return asyncio.run(coroutine)


# ----------------------------------------------------------------------
# Basic request/response behaviour
# ----------------------------------------------------------------------


class TestBasicOps:
    def test_ping_reports_shape_and_limits(self):
        async def scenario():
            async with serving(max_timeout=12.5) as server:
                client = await WireClient.open(server)
                response = await client.call("ping")
                client.close()
                return response

        response = run(scenario())
        assert response["ok"] is True
        result = response["result"]
        assert result["pong"] is True
        assert result["protocol"] == 1
        assert result["server"]["rules"] == 1
        assert result["server"]["facts"] == 3
        assert result["limits"]["budget_ceilings"]["timeout"] == 12.5
        assert result["draining"] is False

    def test_request_ids_echo_verbatim(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                await client.send_raw(
                    encode_frame({"v": 1, "id": "my-id", "op": "ping"})
                )
                await client.send_raw(
                    encode_frame({"v": 1, "id": 99, "op": "ping"})
                )
                first, second = await client.read(), await client.read()
                client.close()
                return first, second

        first, second = run(scenario())
        assert first["id"] == "my-id"
        assert second["id"] == 99

    def test_query_answers_model(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                yes = await client.call("query", query="grad(ben)")
                no = await client.call("query", query="grad(ann)")
                rows = await client.call("answers", pattern="grad(S)")
                model = await client.call("model")
                client.close()
                return yes, no, rows, model

        yes, no, rows, model = run(scenario())
        assert yes["result"] == {"answer": True}
        assert no["result"] == {"answer": False}
        assert rows["result"]["rows"] == [["ben"]]
        assert "grad(ben)" in model["result"]["atoms"]
        assert "take(ann, m1)" in model["result"]["atoms"]

    def test_hypothetical_premise_and_one_shot_assume(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                inline = await client.call(
                    "query", query="grad(ann)[add: take(ann, m2)]"
                )
                assumed = await client.call(
                    "query", query="grad(ann)", assume=["take(ann, m2)"]
                )
                after = await client.call("query", query="grad(ann)")
                client.close()
                return inline, assumed, after

        inline, assumed, after = run(scenario())
        assert inline["result"]["answer"] is True
        assert assumed["result"]["answer"] is True
        # ``assume`` is a what-if: it never mutates the session.
        assert after["result"]["answer"] is False

    def test_parse_error_is_stable_code(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                bad_query = await client.call("query", query="grad(")
                bad_fact = await client.call("assert", facts=["take(X, m1)"])
                ok = await client.call("query", query="grad(ben)")
                client.close()
                return bad_query, bad_fact, ok

        bad_query, bad_fact, ok = run(scenario())
        assert bad_query["error"]["code"] == "parse"
        assert bad_fact["error"]["code"] == "parse"  # non-ground fact
        assert ok["result"]["answer"] is True


# ----------------------------------------------------------------------
# Sessions and isolation
# ----------------------------------------------------------------------


class TestSessions:
    def test_connections_never_observe_each_other(self):
        async def scenario():
            async with serving() as server:
                one = await WireClient.open(server)
                two = await WireClient.open(server)
                await one.call("assert", facts=["take(cat, m1)", "take(cat, m2)"])
                mine = await one.call("query", query="grad(cat)")
                theirs = await two.call("query", query="grad(cat)")
                one.close()
                two.close()
                return mine, theirs

        mine, theirs = run(scenario())
        assert mine["result"]["answer"] is True
        assert theirs["result"]["answer"] is False

    def test_named_sessions_on_one_connection(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                opened = await client.call("session.open", session="a")
                await client.call(
                    "assert",
                    session="a",
                    facts=["take(cat, m1)", "take(cat, m2)"],
                )
                in_a = await client.call("query", session="a", query="grad(cat)")
                in_default = await client.call("query", query="grad(cat)")
                closed = await client.call("session.close", session="a")
                gone = await client.call("query", session="a", query="grad(cat)")
                client.close()
                return opened, in_a, in_default, closed, gone

        opened, in_a, in_default, closed, gone = run(scenario())
        assert opened["result"]["session"] == "a"
        assert opened["result"]["engine"]
        assert in_a["result"]["answer"] is True
        assert in_default["result"]["answer"] is False
        assert closed["result"] == {"closed": "a"}
        assert gone["error"]["code"] == "unknown-session"

    def test_retract_is_private_to_the_session(self):
        async def scenario():
            async with serving() as server:
                one = await WireClient.open(server)
                two = await WireClient.open(server)
                removed = await one.call("retract", facts=["take(ben, m2)"])
                mine = await one.call("query", query="grad(ben)")
                theirs = await two.call("query", query="grad(ben)")
                one.close()
                two.close()
                return removed, mine, theirs

        removed, mine, theirs = run(scenario())
        assert removed["result"]["removed"] == 1
        assert mine["result"]["answer"] is False
        assert theirs["result"]["answer"] is True

    def test_assert_counts_only_new_facts(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                first = await client.call("assert", facts=["take(cat, m1)"])
                again = await client.call("assert", facts=["take(cat, m1)"])
                base = await client.call("assert", facts=["take(ann, m1)"])
                client.close()
                return first, again, base

        first, again, base = run(scenario())
        assert first["result"]["added"] == 1
        assert again["result"]["added"] == 0
        assert base["result"]["added"] == 0  # already in the base db

    def test_engine_override_per_session(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                opened = await client.call(
                    "session.open", session="bu", engine="model"
                )
                answer = await client.call(
                    "query", session="bu", query="grad(ben)"
                )
                client.close()
                return opened, answer

        opened, answer = run(scenario())
        assert opened["result"]["engine"] == "model"
        assert answer["result"]["answer"] is True


# ----------------------------------------------------------------------
# Malformed input: poison one request, not the connection/server
# ----------------------------------------------------------------------


class TestMalformedFrames:
    @pytest.mark.parametrize(
        "raw",
        [
            b"this is not json\n",
            b'{"v": 7, "op": "ping"}\n',
            b'[1, 2, 3]\n',
            b'{"op": "no-such-op"}\n',
            b'{"v": 1, "id": {"nested": true}, "op": "ping"}\n',
        ],
    )
    def test_bad_frame_poisons_one_request_only(self, raw):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                await client.send_raw(raw)
                error = await client.read()
                after = await client.call("query", query="grad(ben)")
                client.close()
                return error, after

        error, after = run(scenario())
        assert error["ok"] is False
        assert error["error"]["code"] in ("invalid-request", "unknown-op")
        assert after["result"]["answer"] is True

    def test_persistently_hostile_connection_is_cut_loose(self):
        async def scenario():
            async with serving() as server:
                hostile = await WireClient.open(server)
                responses = 0
                for _ in range(40):
                    try:
                        await hostile.send_raw(b"garbage\n")
                    except ConnectionError:
                        break
                while True:
                    try:
                        line = await asyncio.wait_for(
                            hostile.reader.readline(), 10.0
                        )
                    except (ConnectionError, asyncio.IncompleteReadError):
                        break  # server cut the connection mid-flood
                    if not line:
                        break
                    responses += 1
                hostile.close()
                # The server survives its hostile client.
                fresh = await WireClient.open(server)
                after = await fresh.call("query", query="grad(ben)")
                fresh.close()
                return responses, after

        responses, after = run(scenario())
        assert responses <= 32
        assert after["result"]["answer"] is True

    def test_oversized_frame_is_one_error_then_recovery(self):
        async def scenario():
            async with serving(max_frame_bytes=1024) as server:
                client = await WireClient.open(server)
                big = b'{"op": "query", "query": "' + b"x" * 5000 + b'"}\n'
                await client.send_raw(big)
                error = await client.read()
                after = await client.call("ping")
                client.close()
                return error, after

        error, after = run(scenario())
        assert error["error"]["code"] == "frame-too-large"
        assert after["result"]["pong"] is True

    def test_blank_lines_are_free_keepalives(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                await client.send_raw(b"\n\n\n")
                alive = await client.call("ping")
                client.close()
                return alive

        assert run(scenario())["result"]["pong"] is True


# ----------------------------------------------------------------------
# Budgets: clamped, exhausted soundly, invalid ones rejected
# ----------------------------------------------------------------------


HARD_NODES = [f"n{i}" for i in range(6)] + ["lonely"]
HARD_EDGES = [
    (a, b)
    for a in HARD_NODES[:6]
    for b in HARD_NODES[:6]
    if a != b
]


def hard_shared():
    """A workload (Hamiltonian path over K6 plus an isolated node)
    that reliably outlives small step budgets."""
    return SharedRulebase(
        hamiltonian_rulebase(), graph_db(HARD_NODES, HARD_EDGES)
    )


class TestBudgets:
    def test_server_ceiling_clamps_client_request(self):
        async def scenario():
            async with serving(hard_shared(), max_steps=50) as server:
                client = await WireClient.open(server)
                # The client asks for far more than the ceiling allows.
                response = await client.call(
                    "query", query="yes", budget={"max_steps": 10_000_000}
                )
                client.close()
                return response

        response = run(scenario())
        assert response["ok"] is False
        error = response["error"]
        assert error["code"] == "exhausted"
        assert error["partial"]["steps"] > 0
        # The wire partial rebuilds into the Python exception.
        clone = ResourceExhausted.from_dict(error)
        assert clone.partial.steps == error["partial"]["steps"]

    def test_client_budget_below_ceiling_is_honoured(self):
        async def scenario():
            async with serving(hard_shared()) as server:
                client = await WireClient.open(server)
                tight = await client.call(
                    "query", query="yes", budget={"max_steps": 40}
                )
                free = await client.call("query", query="yes")
                client.close()
                return tight, free

        tight, free = run(scenario())
        assert tight["error"]["code"] == "exhausted"
        assert free["result"]["answer"] is False

    def test_exhausted_answers_carry_partial_rows(self):
        async def scenario():
            async with serving(hard_shared()) as server:
                client = await WireClient.open(server)
                response = await client.call(
                    "answers", pattern="select(Y)", budget={"max_steps": 5}
                )
                client.close()
                return response

        response = run(scenario())
        assert response["error"]["code"] == "exhausted"
        partial = response["error"]["partial"]
        assert partial["steps"] > 0  # sound spend accounting survived

    @pytest.mark.parametrize(
        "budget",
        [
            "not-an-object",
            {"max_steps": -1},
            {"max_steps": 0},
            {"timeout": True},
            {"max_steps": "many"},
            {"max_stepz": 10},
        ],
    )
    def test_invalid_budgets_rejected_before_admission(self, budget):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                response = await client.call(
                    "query", query="grad(ben)", budget=budget
                )
                client.close()
                return response

        assert run(scenario())["error"]["code"] == "invalid-request"


# ----------------------------------------------------------------------
# Backpressure: admission gate and rate limits
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_overloaded_rejection_is_fast_and_wellformed(self):
        async def scenario():
            async with serving(max_pending=0) as server:
                client = await WireClient.open(server)
                rejected = await client.call("query", query="grad(ben)")
                control = await client.call("ping")  # control ops bypass gate
                client.close()
                metric = server.metrics.counter(
                    "server.requests.rejected_overloaded"
                ).value
                return rejected, control, metric

        rejected, control, metric = run(scenario())
        assert rejected["error"]["code"] == "overloaded"
        assert control["result"]["pong"] is True
        assert metric >= 1

    def test_rate_limit_per_connection(self):
        async def scenario():
            async with serving(max_requests_per_second=1.0) as server:
                client = await WireClient.open(server)
                codes = []
                for _ in range(6):
                    response = await client.call("ping")
                    codes.append(
                        "ok" if response["ok"]
                        else response["error"]["code"]
                    )
                client.close()
                return codes

        codes = run(scenario())
        assert "ok" in codes  # the initial burst passes
        assert "rate-limited" in codes  # the flood does not

    def test_connection_limit(self):
        async def scenario():
            async with serving(max_connections=1) as server:
                first = await WireClient.open(server)
                await first.call("ping")  # ensure registered
                second = await WireClient.open(server)
                rejection = await second.read()
                hung_up = await second.at_eof()
                still = await first.call("ping")
                first.close()
                second.close()
                return rejection, hung_up, still

        rejection, hung_up, still = run(scenario())
        assert rejection["error"]["code"] == "overloaded"
        assert hung_up
        assert still["result"]["pong"] is True


# ----------------------------------------------------------------------
# Network failpoints: degrade the smallest unit (docs/ROBUSTNESS.md)
# ----------------------------------------------------------------------


class TestNetworkFailpoints:
    def test_accept_failure_kills_one_connection_not_the_server(self):
        async def scenario():
            async with serving() as server:
                with failpoints.armed("server.accept"):
                    reader, writer = await asyncio.open_connection(
                        *server.address
                    )
                    died = (await reader.readline()) == b""
                    writer.close()
                survivor = await WireClient.open(server)
                after = await survivor.call("ping")
                survivor.close()
                return died, after

        died, after = run(scenario())
        assert died
        assert after["result"]["pong"] is True

    def test_read_failure_closes_connection_not_the_server(self):
        async def scenario():
            async with serving() as server:
                victim = await WireClient.open(server)
                await victim.call("ping")  # healthy before the fault
                with failpoints.armed("server.read_frame"):
                    await victim.send_raw(
                        encode_frame({"v": 1, "id": 1, "op": "ping"})
                    )
                    died = await victim.at_eof()
                victim.close()
                survivor = await WireClient.open(server)
                after = await survivor.call("ping")
                survivor.close()
                return died, after

        died, after = run(scenario())
        assert died
        assert after["result"]["pong"] is True

    def test_evaluate_failure_answers_the_request(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                with failpoints.armed("server.evaluate"):
                    faulted = await client.call("query", query="grad(ben)")
                after = await client.call("query", query="grad(ben)")
                client.close()
                return faulted, after

        faulted, after = run(scenario())
        assert faulted["error"]["code"] == "exhausted"
        assert "injected" in faulted["error"]["message"]
        assert after["result"]["answer"] is True

    def test_write_failure_closes_connection_not_the_server(self):
        async def scenario():
            async with serving() as server:
                victim = await WireClient.open(server)
                with failpoints.armed("server.write_response"):
                    await victim.send_raw(
                        encode_frame({"v": 1, "id": 1, "op": "ping"})
                    )
                    died = await victim.at_eof()
                victim.close()
                survivor = await WireClient.open(server)
                after = await survivor.call("ping")
                survivor.close()
                metric = server.metrics.counter(
                    "server.write_failures"
                ).value
                return died, after, metric

        died, after, metric = run(scenario())
        assert died
        assert after["result"]["pong"] is True
        assert metric >= 1


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_idle_shutdown_is_clean(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                await client.call("ping")
                address = server.address  # gone once the listener closes
                clean = await server.shutdown(drain_timeout=2.0)
                hung_up = await client.at_eof()
                client.close()
                return clean, hung_up, address

        clean, hung_up, address = run(scenario())
        assert clean is True
        assert hung_up
        # The listener is closed: nobody new can connect.
        with pytest.raises(OSError):
            run(asyncio.open_connection(*address))

    def test_inflight_work_finishes_before_drain_completes(self):
        async def scenario():
            async with serving(hard_shared()) as server:
                client = await WireClient.open(server)
                # Get a real search in flight, then drain: the drain
                # must wait for it and deliver its answer.
                await client.send_raw(
                    encode_frame(
                        {"v": 1, "id": 1, "op": "query", "query": "yes"}
                    )
                )
                while server._inflight == 0:
                    await asyncio.sleep(0.005)
                clean = await server.shutdown(drain_timeout=10.0)
                response = await client.read()
                client.close()
                return clean, response

        clean, response = run(scenario())
        assert clean is True
        assert response["result"]["answer"] is False

    def test_stragglers_are_cancelled_into_exhausted_responses(self):
        nodes = [f"n{i}" for i in range(9)] + ["lonely"]
        edges = [(a, b) for a in nodes[:9] for b in nodes[:9] if a != b]
        shared = SharedRulebase(hamiltonian_rulebase(), graph_db(nodes, edges))

        async def scenario():
            async with serving(shared, max_timeout=60.0) as server:
                slow = await WireClient.open(server)
                bystander = await WireClient.open(server)
                # A multi-second search gets in flight...
                await slow.send_raw(
                    encode_frame(
                        {
                            "v": 1,
                            "id": "slow",
                            "op": "query",
                            "query": "yes",
                            "budget": {"timeout": 50},
                        }
                    )
                )
                await asyncio.sleep(0.3)
                shutdown = asyncio.create_task(
                    server.shutdown(drain_timeout=0.2)
                )
                await asyncio.sleep(0.1)
                # While draining, new work is refused with a stable code.
                refused = await bystander.call("query", query="grad(x)")
                clean = await shutdown
                response = await slow.read()
                slow.close()
                bystander.close()
                cancelled = server.metrics.counter(
                    "server.drain.cancelled"
                ).value
                return refused, clean, response, cancelled

        refused, clean, response, cancelled = run(scenario())
        assert refused["error"]["code"] == "shutting-down"
        assert clean is False
        assert response["id"] == "slow"
        assert response["error"]["code"] == "exhausted"
        assert "cancel" in response["error"]["message"]
        assert cancelled >= 1


# ----------------------------------------------------------------------
# Startup validation and observability
# ----------------------------------------------------------------------


class TestStartupAndObservability:
    def test_broken_rulebase_fails_at_startup_not_per_request(self):
        from repro.core.errors import HypotheticalDatalogError

        bad = parse_program("p :- ~p.")  # not stratifiable
        with pytest.raises(HypotheticalDatalogError):
            SharedRulebase(bad, engine="model")

    def test_request_metrics_accumulate(self):
        async def scenario():
            async with serving() as server:
                client = await WireClient.open(server)
                await client.call("query", query="grad(ben)")
                await client.call("query", query="grad(")
                await client.send_raw(b"junk\n")
                await client.read()
                client.close()
                metrics = server.metrics
                return {
                    "total": metrics.counter("server.requests.total").value,
                    "ok": metrics.counter("server.requests.ok").value,
                    "errors": metrics.counter("server.requests.errors").value,
                    "malformed": metrics.counter(
                        "server.frames.malformed"
                    ).value,
                }

        counts = run(scenario())
        assert counts["total"] >= 3
        assert counts["ok"] >= 1
        assert counts["errors"] >= 1
        assert counts["malformed"] == 1

    def test_request_spans_recorded_flat_under_root(self):
        from repro.obs.trace import Tracer

        async def scenario():
            tracer = Tracer()
            shared = make_shared()
            server = HypoDatalogServer(
                shared, ServerConfig(port=0), tracer=tracer
            )
            await server.start()
            client = await WireClient.open(server)
            await client.call("query", query="grad(ben)")
            await client.call("ping")
            client.close()
            await server.shutdown(drain_timeout=2.0)
            return tracer

        tracer = run(scenario())
        spans = [
            span for span in tracer.root.children
            if getattr(span, "kind", None) == "server.request"
        ]
        assert len(spans) == 2
        assert {span.args["op"] for span in spans} == {"query", "ping"}
        assert all(span.args["outcome"] == "ok" for span in spans)
