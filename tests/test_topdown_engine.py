"""Unit tests for the tabled top-down engine (full language)."""

import pytest

from repro.core.database import Database
from repro.core.errors import StratificationError
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.topdown import TopDownEngine
from repro.library import (
    addition_chain_rulebase,
    degree_db,
    degree_rulebase,
    example10_rulebase,
    graph_db,
    hamiltonian_rulebase,
    parity_db,
    parity_rulebase,
)


class TestConstruction:
    def test_rejects_recursive_negation(self):
        with pytest.raises(StratificationError):
            TopDownEngine(parse_program("a :- ~b. b :- ~a."))

    def test_accepts_nonlinear_rulebases(self):
        TopDownEngine(example10_rulebase())
        TopDownEngine(degree_rulebase())


class TestInference:
    def test_database_facts(self):
        engine = TopDownEngine(parse_program("p :- q."))
        assert engine.ask(Database([atom("f")]), "f")
        assert not engine.ask(Database(), "f")

    def test_hypothetical_goal(self):
        engine = TopDownEngine(parse_program("a :- b."))
        assert engine.ask(Database(), "a[add: b]")

    def test_negation_with_local_variable(self):
        engine = TopDownEngine(parse_program("empty :- ~item(X)."))
        assert engine.ask(Database.from_relations({"d": ["a"]}), "empty")
        assert not engine.ask(Database.from_relations({"item": ["a"]}), "empty")

    def test_negation_with_bound_variable(self):
        engine = TopDownEngine(parse_program("solo(X) :- node(X), ~edge(X, Y)."))
        db = Database.from_relations({"node": ["a", "b"], "edge": [("a", "b")]})
        assert engine.answers(db, "solo(X)") == {("b",)}

    def test_derived_positive_premise_with_variables(self):
        engine = TopDownEngine(
            parse_program(
                """
                reach(X) :- start(X).
                reach(Y) :- reach(X), edge(X, Y).
                far :- reach(c).
                """
            )
        )
        db = Database.from_relations(
            {"start": ["a"], "edge": [("a", "b"), ("b", "c")]}
        )
        assert engine.ask(db, "far")


class TestNonLinearFragment:
    def test_example3_degree_policy(self):
        engine = TopDownEngine(degree_rulebase())
        rows = engine.answers(degree_db(), "grad(S, mathphys)")
        assert rows == {("ada",), ("bob",)}

    def test_example10_semantics(self):
        engine = TopDownEngine(example10_rulebase())
        assert engine.ask(Database(), "a1")  # a1 :- ~b1 with b1 absent

    def test_rule2_shape_terminates(self):
        # Two recursive hypothetical premises in one rule — the paper's
        # rule (2), the PSPACE-hardness shape.  a holds at {} because a
        # holds at {e} (second rule) and at {f} (third rule).
        engine = TopDownEngine(
            parse_program(
                """
                a :- a[add: e], a[add: f].
                a :- e.
                a :- f.
                """
            )
        )
        assert engine.ask(Database(), "a")
        # And the unsatisfiable variant terminates with False: proving
        # a at {e} would need both e and f.
        strict = TopDownEngine(
            parse_program(
                """
                a :- a[add: e], a[add: f].
                a :- e, f.
                """
            )
        )
        assert not strict.ask(Database(), "a")
        assert strict.ask(Database(), "a[add: e, f]")


class TestAgreementWithOtherEngines:
    @pytest.mark.parametrize("size", range(5))
    def test_parity(self, size):
        rb = parity_rulebase()
        db = parity_db([f"x{i}" for i in range(size)])
        top = TopDownEngine(rb)
        model = PerfectModelEngine(rb)
        assert top.ask(db, "even") == model.ask(db, "even")

    def test_hamiltonian(self):
        rb = hamiltonian_rulebase()
        top = TopDownEngine(rb)
        assert top.ask(graph_db(["a", "b"], [("a", "b")]), "yes")
        assert not top.ask(graph_db(["a", "b"], []), "yes")

    def test_chain(self):
        engine = TopDownEngine(addition_chain_rulebase(4))
        assert engine.ask(Database(), "a1")
        assert not engine.ask(Database(), "a2")


class TestTabling:
    def test_true_goals_cached(self):
        engine = TopDownEngine(addition_chain_rulebase(4))
        engine.ask(Database(), "a1")
        first = engine.stats.goals
        engine.ask(Database(), "a1")
        assert engine.stats.goals == first
        assert engine.stats.cache_hits >= 1

    def test_clear_caches(self):
        engine = TopDownEngine(addition_chain_rulebase(3))
        engine.ask(Database(), "a1")
        engine.clear_caches()
        before = engine.stats.goals
        engine.ask(Database(), "a1")
        assert engine.stats.goals > before

    def test_cycle_cut_keeps_completeness(self):
        engine = TopDownEngine(
            parse_program(
                """
                p :- q.
                q :- p.
                p :- base.
                """
            )
        )
        assert engine.ask(Database([atom("base")]), "q")
        assert not engine.ask(Database(), "q")

    def test_memoize_disabled(self):
        engine = TopDownEngine(parity_rulebase(), memoize=False)
        assert engine.ask(parity_db(["x", "y"]), "even")
