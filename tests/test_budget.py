"""Resource governor tests: budgets, cancellation, partial results.

Covers the :class:`~repro.engine.budget.Budget` guards in isolation,
then exhaustion at every evaluator entry point (``model``, ``prove``,
``topdown``, the stratified substrate, and the Datalog fixpoints),
the soundness of partial results (always a subset of the unbudgeted
outcome), recursion-limit conversion, and engine reusability after a
trip.  docs/ROBUSTNESS.md documents the contract.
"""

import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.errors import ResourceExhausted
from repro.core.parser import parse_program
from repro.engine.budget import (
    NULL_BUDGET,
    Budget,
    CancellationToken,
    cancelled_error,
    depth_error,
)
from repro.engine.datalog import naive_least_fixpoint, seminaive_least_fixpoint
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.query import Session
from repro.engine.stratified import perfect_model
from repro.engine.topdown import TopDownEngine
from repro.library import graph_db, hamiltonian_rulebase

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TC = "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y)."


def chain_db(n):
    nodes = [f"n{i}" for i in range(n)]
    return graph_db(nodes, [(nodes[i], nodes[i + 1]) for i in range(n - 1)])


# ----------------------------------------------------------------------
# The Budget object
# ----------------------------------------------------------------------


class TestBudgetUnit:
    def test_rejects_non_positive_limits(self):
        for kwargs in (
            {"timeout": 0},
            {"max_steps": -1},
            {"max_atoms": 0},
            {"max_depth": -5},
        ):
            with pytest.raises(ValueError):
                Budget(**kwargs)
        with pytest.raises(ValueError):
            Budget(check_interval=0)

    def test_step_limit_trips_at_site(self):
        budget = Budget(max_steps=3).begin()
        for _ in range(3):
            budget.charge("topdown.goals")
        with pytest.raises(ResourceExhausted) as exc:
            budget.charge("topdown.goals")
        assert exc.value.reason == "steps"
        assert exc.value.site == "topdown.goals"
        assert exc.value.partial.steps == 4

    def test_atom_limit(self):
        budget = Budget(max_atoms=2).begin()
        budget.charge_atoms("delta.derived", 2)
        with pytest.raises(ResourceExhausted) as exc:
            budget.charge_atoms("delta.derived")
        assert exc.value.reason == "atoms"

    def test_depth_guard(self):
        budget = Budget(max_depth=10).begin()
        budget.check_depth("topdown.goals", 10)
        with pytest.raises(ResourceExhausted) as exc:
            budget.check_depth("topdown.goals", 11)
        assert exc.value.reason == "depth"

    def test_deadline_is_polled(self):
        now = [0.0]
        budget = Budget(timeout=1.0, check_interval=4, clock=lambda: now[0])
        budget.begin()
        now[0] = 2.0  # past the deadline, but not yet at a poll point
        budget.charge("delta.firings")
        with pytest.raises(ResourceExhausted) as exc:
            for _ in range(4):
                budget.charge("delta.firings")
        assert exc.value.reason == "deadline"

    def test_begin_is_idempotent(self):
        now = [5.0]
        budget = Budget(timeout=1.0, clock=lambda: now[0]).begin()
        now[0] = 5.5
        budget.begin()  # must not re-anchor the deadline
        now[0] = 6.1
        with pytest.raises(ResourceExhausted):
            for _ in range(64):
                budget.poll("delta.round")

    def test_cancellation_token(self):
        token = CancellationToken()
        budget = Budget(token=token, check_interval=1).begin()
        budget.poll("delta.round")
        token.cancel()
        with pytest.raises(ResourceExhausted) as exc:
            budget.poll("delta.round")
        assert exc.value.reason == "cancelled"
        token.reset()
        budget.poll("delta.round")  # usable again

    def test_fresh_copies_limits_not_usage(self):
        budget = Budget(max_steps=10, max_atoms=5).begin()
        budget.charge("delta.firings", 7)
        copy = budget.fresh()
        assert copy.steps == 0 and copy.atoms == 0
        assert copy.max_steps == 10 and copy.max_atoms == 5

    def test_describe(self):
        assert Budget().describe() == "(no limits)"
        text = Budget(timeout=2.0, max_steps=10).describe()
        assert "timeout=2.0s" in text and "steps=10" in text

    def test_null_budget_is_inert(self):
        assert NULL_BUDGET.enabled is False
        NULL_BUDGET.charge("delta.firings", 10**9)
        NULL_BUDGET.charge_atoms("delta.derived", 10**9)
        NULL_BUDGET.check_depth("topdown.goals", 10**9)
        NULL_BUDGET.poll("delta.round")
        assert NULL_BUDGET.begin() is NULL_BUDGET
        assert NULL_BUDGET.fresh() is NULL_BUDGET

    def test_error_helpers_carry_usage(self):
        budget = Budget().begin()
        budget.charge("topdown.goals", 3)
        assert cancelled_error(budget).partial.steps == 3
        assert depth_error(budget).reason == "depth"


# ----------------------------------------------------------------------
# Exhaustion at every entry point
# ----------------------------------------------------------------------


class TestEntryPoints:
    def setup_method(self):
        self.rb = hamiltonian_rulebase()
        self.db = graph_db(["a", "b", "c"], [("a", "b"), ("b", "c")])

    @pytest.mark.parametrize("factory", [
        PerfectModelEngine,
        LinearStratifiedProver,
        TopDownEngine,
    ])
    def test_ask_step_exhaustion(self, factory):
        engine = factory(self.rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(self.db, "yes", budget=Budget(max_steps=3))
        error = exc.value
        assert error.reason == "steps"
        assert error.site is not None
        assert error.partial.steps > 0

    @pytest.mark.parametrize("factory", [
        PerfectModelEngine,
        LinearStratifiedProver,
        TopDownEngine,
    ])
    def test_engine_reusable_after_exhaustion(self, factory):
        engine = factory(self.rb)
        with pytest.raises(ResourceExhausted):
            engine.ask(self.db, "yes", budget=Budget(max_steps=2))
        assert engine.ask(self.db, "yes") is True

    @pytest.mark.parametrize("factory", [
        PerfectModelEngine,
        LinearStratifiedProver,
        TopDownEngine,
    ])
    def test_partial_answers_are_subset(self, factory):
        full = factory(self.rb).answers(self.db, "select(Y)")
        engine = factory(self.rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.answers(self.db, "select(Y)", budget=Budget(max_steps=1))
        partial = exc.value.partial
        assert partial.answers is not None
        assert partial.answers <= full

    def test_session_threads_budget(self):
        session = Session(self.rb)
        with pytest.raises(ResourceExhausted):
            session.ask(self.db, "yes", budget=Budget(max_steps=2))
        assert session.ask(self.db, "yes") is True

    def test_session_constructor_budget(self):
        session = Session(self.rb, budget=Budget(max_steps=3))
        with pytest.raises(ResourceExhausted):
            session.ask(self.db, "yes")

    def test_model_atoms_in_partial(self):
        engine = PerfectModelEngine(self.rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.model(self.db, budget=Budget(max_atoms=1))
        error = exc.value
        assert error.reason == "atoms"
        assert error.partial.atoms is not None

    def test_stratified_perfect_model(self):
        rb = parse_program(TC)
        db = chain_db(12)
        with pytest.raises(ResourceExhausted) as exc:
            perfect_model(rb, db, budget=Budget(max_atoms=5))
        partial = exc.value.partial
        full = perfect_model(rb, db).to_frozenset()
        assert partial.atoms is not None
        assert partial.atoms <= full

    def test_fixpoint_entry_points(self):
        rb = parse_program(TC)
        db = chain_db(12)
        for fixpoint in (naive_least_fixpoint, seminaive_least_fixpoint):
            with pytest.raises(ResourceExhausted):
                fixpoint(rb, db, budget=Budget(max_atoms=5))

    def test_deadline_exhaustion_latency(self):
        # Acceptance: the raise lands within 1.2x the deadline.
        import time

        engine = PerfectModelEngine(hamiltonian_rulebase())
        db = graph_db(
            [f"v{i}" for i in range(7)],
            [(f"v{i}", f"v{j}") for i in range(7) for j in range(7) if i != j],
        )
        deadline = 0.05
        start = time.monotonic()
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(db, "yes", budget=Budget(timeout=deadline))
        elapsed = time.monotonic() - start
        assert exc.value.reason == "deadline"
        assert elapsed < deadline * 1.2 + 0.05  # small fixed slack for CI

    def test_cancellation_mid_query(self):
        # Cancel after a fixed number of steps via a budget-sharing token.
        token = CancellationToken()
        budget = Budget(token=token, check_interval=1, max_steps=None)
        engine = PerfectModelEngine(self.rb)
        token.cancel()
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(self.db, "yes", budget=budget)
        assert exc.value.reason == "cancelled"


# ----------------------------------------------------------------------
# Recursion-limit conversion (no raw RecursionError escapes)
# ----------------------------------------------------------------------


def deep_hypothetical_chain(n):
    rules = [f"a{i} :- a{i + 1}[add: h{i}]." for i in range(n)]
    rules.append(f"a{n} :- base.")
    return parse_program("\n".join(rules))


class TestRecursionConversion:
    def test_prove_converts_recursion_error(self):
        n = sys.getrecursionlimit()
        rb = deep_hypothetical_chain(n)
        engine = LinearStratifiedProver(rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(Database.from_relations({"base": [()]}), "a0")
        assert exc.value.reason == "depth"

    def test_topdown_converts_recursion_error(self):
        n = sys.getrecursionlimit()
        rb = deep_hypothetical_chain(n)
        engine = TopDownEngine(rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(Database.from_relations({"base": [()]}), "a0")
        assert exc.value.reason == "depth"

    def test_model_converts_recursion_error(self):
        n = sys.getrecursionlimit()
        rb = deep_hypothetical_chain(n)
        engine = PerfectModelEngine(rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(Database.from_relations({"base": [()]}), "a0")
        assert exc.value.reason == "depth"

    def test_depth_budget_trips_before_interpreter_limit(self):
        rb = deep_hypothetical_chain(200)
        engine = LinearStratifiedProver(rb)
        with pytest.raises(ResourceExhausted) as exc:
            engine.ask(
                Database.from_relations({"base": [()]}),
                "a0",
                budget=Budget(max_depth=50),
            )
        assert exc.value.reason == "depth"
        assert exc.value.site == "prove.sigma_goals"


# ----------------------------------------------------------------------
# Properties: budgets never change *what* is computed, only *how much*
# ----------------------------------------------------------------------


class TestProperties:
    @SETTINGS
    @given(steps=st.integers(min_value=1, max_value=120))
    def test_partial_answers_subset_of_full(self, steps):
        rb = hamiltonian_rulebase()
        db = graph_db(["a", "b", "c"], [("a", "b"), ("b", "c")])
        full = LinearStratifiedProver(rb).answers(db, "select(Y)")
        engine = LinearStratifiedProver(rb)
        try:
            partial = engine.answers(
                db, "select(Y)", budget=Budget(max_steps=steps)
            )
        except ResourceExhausted as error:
            partial = error.partial.answers or set()
        assert partial <= full

    @SETTINGS
    @given(cap=st.integers(min_value=1, max_value=80), n=st.integers(3, 9))
    def test_atom_budget_is_strategy_invariant(self, cap, n):
        # Naive and semi-naive closures derive identical atom sets, so
        # an atom budget exhausts both or neither — and when neither,
        # the models agree (differential parity under budgets).
        rb = parse_program(TC)
        db = chain_db(n)
        outcomes = {}
        for strategy in ("naive", "seminaive"):
            try:
                model = perfect_model(
                    rb, db, strategy=strategy, budget=Budget(max_atoms=cap)
                )
                outcomes[strategy] = ("ok", model.to_frozenset())
            except ResourceExhausted:
                outcomes[strategy] = ("exhausted", None)
        assert outcomes["naive"][0] == outcomes["seminaive"][0]
        if outcomes["naive"][0] == "ok":
            assert outcomes["naive"][1] == outcomes["seminaive"][1]

    @SETTINGS
    @given(steps=st.integers(min_value=1, max_value=400), n=st.integers(3, 8))
    def test_step_budget_partial_atoms_sound(self, steps, n):
        # Under any step budget, each strategy either finishes with the
        # exact model or raises with partial atoms that are a subset of
        # that model.
        rb = parse_program(TC)
        db = chain_db(n)
        full = perfect_model(rb, db).to_frozenset()
        for strategy in ("naive", "seminaive"):
            try:
                model = perfect_model(
                    rb, db, strategy=strategy, budget=Budget(max_steps=steps)
                )
                assert model.to_frozenset() == full
            except ResourceExhausted as error:
                assert error.partial.atoms is not None
                assert error.partial.atoms <= full
