"""Demand transformation (extended magic sets) — PR 6.

Covers the static side (:mod:`repro.analysis.demand`,
:mod:`repro.analysis.magic`), the engine integrations
(``PerfectModelEngine``, ``perfect_model``, the positive fixpoints,
``Session``), and the user surfaces (``explain --demand``,
``:explain demand``).  The invariant everything here defends: demand
evaluation returns exactly the answers of full evaluation — when that
cannot be guaranteed statically, the engines fall back, count the
fallback, and never change an answer.
"""

from __future__ import annotations

import pytest

from repro.analysis.demand import derive_demand
from repro.analysis.magic import format_rewrite, magic_rewrite
from repro.analysis.stratify import demand_strata
from repro.core.database import Database
from repro.core.parser import parse_atom, parse_premise, parse_program
from repro.core.terms import atom
from repro.engine.datalog import (
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)
from repro.engine.model import PerfectModelEngine
from repro.engine.query import Session
from repro.engine.stratified import perfect_model, stratified_holds
from repro.library.hamiltonian import graph_db, hamiltonian_rulebase
from repro.library.parity import parity_db, parity_rulebase
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

TC_RULES = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""

#: Two components: a 4-cycle reachable from ``a`` and a separate
#: triangle — the demanded sub-model is a strict subset of the model.
TWO_COMPONENT_DB = """
node(a). node(b). node(c). node(d).
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
edge(x1, x2). edge(x2, x3). edge(x3, x1).
"""


def _tc():
    return parse_program(TC_RULES)


def _tc_db():
    from repro.core.parser import parse_database

    return parse_database(TWO_COMPONENT_DB)


class TestDeriveDemand:
    def test_accepts_bound_recursive_query(self):
        report = derive_demand(_tc(), "tc(a, Y)")
        assert report.ok
        assert report.adornment == "bf"
        assert report.cone == {"tc"}
        assert report.restricted == {"tc"}
        assert report.free == frozenset()
        assert "bf" in report.patterns["tc"]

    def test_rejects_negated_query(self):
        report = derive_demand(_tc(), "~tc(a, Y)")
        assert not report.ok
        assert report.reason == "negated-query"
        assert [d.code for d in report.diagnostics] == [
            "demand-unbound-negation"
        ]

    def test_rejects_edb_query_silently(self):
        report = derive_demand(_tc(), "edge(a, Y)")
        assert not report.ok
        assert report.reason == "edb-query"
        assert report.diagnostics == ()

    def test_rejects_deletions(self):
        rules = parse_program("p(X) :- q(X)[del: r(X)]. q(X) :- r(X).")
        report = derive_demand(rules, "p(a)")
        assert not report.ok
        assert report.reason == "deletions"
        assert [d.code for d in report.diagnostics] == [
            "demand-blocked-hypothesis"
        ]

    def test_rejects_query_swallowed_by_free_set(self):
        # p is negated inside its own cone, so its whole cone is free.
        rules = parse_program("p(X) :- edge(X, Y), ~p(Y).")
        report = derive_demand(rules, "p(a)")
        assert not report.ok
        assert report.reason == "negation-free-set"
        assert [d.code for d in report.diagnostics] == [
            "demand-unbound-negation"
        ]

    def test_negation_carves_out_free_set(self):
        report = derive_demand(hamiltonian_rulebase(), "path(n1)")
        assert report.ok
        assert report.restricted == {"path"}
        assert report.free == {"select"}

    def test_cone_excludes_unreachable_predicates(self):
        report = derive_demand(hamiltonian_rulebase(), "path(n1)")
        assert "yes" not in report.cone

    def test_additions_do_not_extend_cone(self):
        # p calls q only inside [add: ...]; additions are updates, not
        # reads, so q stays outside the cone.
        rules = parse_program(
            "p(X) :- r(X)[add: q(X)]. q(X) :- e(X). r(X) :- e(X)."
        )
        report = derive_demand(rules, "p(a)")
        assert report.ok
        assert report.cone == {"p", "r"}


class TestMagicRewrite:
    def test_seed_rule_carries_query_constants(self):
        result = magic_rewrite(_tc(), "tc(a, Y)")
        assert result.ok
        seed = result.program.seed
        assert seed.body == ()
        assert seed.head.predicate == "magic__tc__bf"
        assert [str(argument) for argument in seed.head.args] == ["a"]

    def test_guarded_rules_prefix_magic_guard(self):
        result = magic_rewrite(_tc(), "tc(a, Y)")
        guarded = [
            item
            for item in result.program.rulebase
            if item.head.predicate == "tc"
        ]
        assert len(guarded) == 2
        for item in guarded:
            first = item.body[0]
            assert first.goal.predicate == "magic__tc__bf"

    def test_rewrite_restratifies(self):
        result = magic_rewrite(hamiltonian_rulebase(), "path(n1)")
        assert result.ok
        assert result.program.strata
        assert demand_strata(
            result.program.rulebase, result.program.demand_predicates
        ) is not None

    def test_bound_seeds_map_hypothetical_goals(self):
        result = magic_rewrite(hamiltonian_rulebase(), "path(n1)")
        assert result.program.bound_seeds == {"path": "magic__path__b"}

    def test_name_collision_gets_suffix(self):
        rules = parse_program(
            "magic__tc__bf(X) :- e(X)."
            " tc(X, Y) :- edge(X, Y)."
            " tc(X, Z) :- edge(X, Y), tc(Y, Z)."
        )
        result = magic_rewrite(rules, "tc(a, Y)")
        assert result.ok
        names = {
            name
            for (_, _adornment), name in result.program.magic_names.items()
        }
        assert "magic__tc__bf_x" in names

    def test_rejection_flows_through(self):
        result = magic_rewrite(_tc(), "~tc(a, Y)")
        assert not result.ok
        assert result.program is None
        assert result.reason == "negated-query"

    def test_format_rewrite_mentions_sections(self):
        text = format_rewrite(magic_rewrite(hamiltonian_rulebase(), "path(n1)"))
        assert "% seed" in text
        assert "% guarded rules" in text
        assert "magic__path__b" in text
        assert "dropped (outside the query cone): yes" in text

    def test_format_rewrite_explains_rejection(self):
        text = format_rewrite(magic_rewrite(_tc(), "~tc(a, Y)"))
        assert "rejected (negated-query)" in text
        assert "untransformed" in text


class TestEngineDemand:
    def test_goal_directed_prunes_other_component(self):
        rules = _tc()
        db = _tc_db()
        off = PerfectModelEngine(rules)
        on = PerfectModelEngine(rules, demand="on")
        assert on.answers(db, "tc(a, Y)") == off.answers(db, "tc(a, Y)")
        firings_on = on.metrics.counter("model.rule_firings").value
        firings_off = off.metrics.counter("model.rule_firings").value
        assert firings_on < firings_off

    def test_hypothetical_recursion_with_demand(self):
        # Two components; only the queried one should be explored.
        rules = hamiltonian_rulebase()
        db = graph_db(
            ["n1", "n2", "n3", "m1", "m2"],
            [("n1", "n2"), ("n2", "n3"), ("m1", "m2"), ("m2", "m1")],
        )
        off = PerfectModelEngine(rules)
        on = PerfectModelEngine(rules, demand="on")
        for goal in ["path(n1)", "path(n3)", "path(m1)"]:
            assert on.ask(db, goal) is off.ask(db, goal), goal
        assert (
            on.metrics.counter("model.models_computed").value
            < off.metrics.counter("model.models_computed").value
        )

    def test_hypothetical_premise_query(self):
        rules = hamiltonian_rulebase()
        db = graph_db(["n1", "n2"], [("n1", "n2")])
        off = PerfectModelEngine(rules)
        on = PerfectModelEngine(rulebase=rules, demand="on")
        query = "path(n2)[add: pnode(n1)]"
        assert on.ask(db, query) is off.ask(db, query)

    def test_parity_zero_ary_queries(self):
        rules = parity_rulebase()
        for size in range(4):
            db = parity_db([f"x{index}" for index in range(size)])
            on = PerfectModelEngine(rules, demand="on")
            assert on.ask(db, "even") is (size % 2 == 0), size

    def test_model_method_is_always_full(self):
        rules = _tc()
        db = _tc_db()
        on = PerfectModelEngine(rules, demand="on")
        off = PerfectModelEngine(rules)
        assert on.model(db) == off.model(db)

    def test_on_mode_records_rejection_diagnostics(self):
        engine = PerfectModelEngine(_tc(), demand="on")
        assert engine.ask(_tc_db(), "~tc(a, x1)") is True
        assert [d.code for d in engine.diagnostics] == [
            "demand-unbound-negation"
        ]
        assert engine.metrics.counter("engine.demand_fallbacks").value == 1

    def test_auto_mode_counts_but_stays_silent(self):
        engine = PerfectModelEngine(_tc(), demand="auto")
        assert engine.ask(_tc_db(), "~tc(a, x1)") is True
        assert engine.diagnostics == []
        assert engine.metrics.counter("engine.demand_fallbacks").value == 1

    def test_foreign_constant_falls_back(self):
        engine = PerfectModelEngine(_tc(), demand="on")
        assert engine.ask(_tc_db(), "tc(zzz, Y)") is False
        assert engine.metrics.counter("engine.demand_fallbacks").value == 1
        # ... and the answer still matches full evaluation.
        assert engine.answers(_tc_db(), "tc(a, Y)") == PerfectModelEngine(
            _tc()
        ).answers(_tc_db(), "tc(a, Y)")

    def test_edb_query_falls_back_silently(self):
        engine = PerfectModelEngine(_tc(), demand="on")
        assert engine.ask(_tc_db(), "edge(a, b)") is True
        assert engine.diagnostics == []
        assert engine.metrics.counter("engine.demand_fallbacks").value == 1

    def test_magic_facts_counted(self):
        engine = PerfectModelEngine(_tc(), demand="on")
        engine.answers(_tc_db(), "tc(a, Y)")
        assert engine.metrics.counter("demand.magic_facts").value > 0
        assert engine.metrics.counter("demand.rules_rewritten").value == 2

    def test_rewrite_decision_traced(self):
        from repro.obs.trace import walk

        tracer = Tracer()
        engine = PerfectModelEngine(_tc(), demand="on", tracer=tracer)
        engine.answers(_tc_db(), "tc(a, Y)")
        engine.ask(_tc_db(), "~tc(a, x1)")
        tracer.finish()
        events = [
            (node.label, (node.args or {}).get("reason"))
            for _, node in walk(tracer.root)
            if node.kind == "demand"
        ]
        assert ("rewrite", None) in events
        assert ("fallback", "negated-query") in events

    def test_delegate_is_cached_per_query(self):
        engine = PerfectModelEngine(_tc(), demand="on")
        db = _tc_db()
        engine.answers(db, "tc(a, Y)")
        first = engine.metrics.counter("demand.rules_rewritten").value
        engine.answers(db, "tc(a, Y)")
        assert engine.metrics.counter("demand.rules_rewritten").value == first

    def test_budget_applies_to_delegate(self):
        from repro.core.errors import ResourceExhausted
        from repro.engine.budget import Budget

        engine = PerfectModelEngine(hamiltonian_rulebase(), demand="on")
        db = graph_db(
            ["n1", "n2", "n3", "n4"],
            [
                ("n1", "n2"),
                ("n2", "n3"),
                ("n3", "n4"),
                ("n4", "n1"),
                ("n1", "n3"),
            ],
        )
        with pytest.raises(ResourceExhausted):
            engine.ask(db, "path(n1)", budget=Budget(max_steps=5))
        # The engine stays usable after exhaustion.
        assert engine.ask(db, "path(n1)") is True


class TestStratifiedDemand:
    def test_demanded_model_matches_on_query(self):
        rules = _tc()
        db = _tc_db()
        full = perfect_model(rules, db)
        metrics = MetricsRegistry()
        demanded = perfect_model(
            rules, db, metrics=metrics, demand="on", query="tc(a, Y)"
        )
        pattern = parse_atom("tc(a, Y)")
        full_rows = {
            binding[pattern.args[1]] for binding in full.matches(pattern)
        }
        demanded_rows = {
            binding[pattern.args[1]] for binding in demanded.matches(pattern)
        }
        assert demanded_rows == full_rows
        assert metrics.counter("demand.magic_facts").value > 0

    def test_magic_atoms_stripped(self):
        demanded = perfect_model(_tc(), _tc_db(), demand="on", query="tc(a, Y)")
        assert not any(
            item.predicate.startswith(("magic__", "sup__"))
            for item in demanded.to_frozenset()
        )

    def test_rejection_counts_fallback(self):
        rules = parse_program("p(X) :- edge(X, Y), ~p(Y). q(X) :- p(X).")
        metrics = MetricsRegistry()
        db = Database([atom("edge", "a", "b")])
        with pytest.raises(Exception):
            # Recursion through negation: stratification itself fails.
            perfect_model(rules, db, metrics=metrics, demand="on", query="q(a)")

    def test_negation_program_fallback_is_sound(self):
        rules = parse_program(
            "reach(X) :- tc(a, X)."
            " blocked(X) :- node(X), ~reach(X)."
            " tc(X, Y) :- edge(X, Y)."
            " tc(X, Z) :- edge(X, Y), tc(Y, Z)."
        )
        db = _tc_db()
        full = perfect_model(rules, db).to_frozenset()

        # A negated query needs the complete extension: rejected, the
        # fallback counted — same answers either way.
        metrics = MetricsRegistry()
        model = perfect_model(
            rules, db, metrics=metrics, demand="on", query="~reach(x9)"
        )
        assert model.to_frozenset() == full
        assert metrics.counter("engine.demand_fallbacks").value == 1

        # reach's own cone does not contain the rule negating it
        # (blocked is unreachable from reach), so its query is accepted
        # — the negating rule is simply dropped with the rest of the
        # non-cone program, and reach's extension is exact.
        metrics = MetricsRegistry()
        model = perfect_model(
            rules, db, metrics=metrics, demand="on", query="reach(X)"
        )
        assert {
            item for item in model.to_frozenset() if item.predicate == "reach"
        } == {item for item in full if item.predicate == "reach"}
        assert metrics.counter("engine.demand_fallbacks").value == 0

        # blocked itself is restricted (only its inputs are free), so
        # the rewrite proceeds; blocked's extension must be unchanged.
        metrics = MetricsRegistry()
        model = perfect_model(
            rules, db, metrics=metrics, demand="on", query="blocked(X)"
        )
        assert {
            item for item in model.to_frozenset() if item.predicate == "blocked"
        } == {item for item in full if item.predicate == "blocked"}
        assert metrics.counter("engine.demand_fallbacks").value == 0
        assert metrics.counter("demand.rules_rewritten").value > 0

    def test_stratified_holds_with_demand(self):
        assert stratified_holds(
            _tc(), _tc_db(), parse_atom("tc(a, d)"), demand="on"
        )
        assert not stratified_holds(
            _tc(), _tc_db(), parse_atom("tc(a, x1)"), demand="on"
        )


class TestFixpointDemand:
    def test_both_strategies_agree_with_full_fixpoint(self):
        rules = _tc()
        facts = list(_tc_db().facts)
        query = parse_atom("tc(a, Y)")
        full = {
            item
            for item in seminaive_least_fixpoint(rules.rules, facts)
            if item.predicate == "tc" and str(item.args[0].value) == "a"
        }
        for fixpoint in (naive_least_fixpoint, seminaive_least_fixpoint):
            demanded = fixpoint(rules.rules, facts, demand="on", query=query)
            got = {
                item
                for item in demanded
                if item.predicate == "tc" and str(item.args[0].value) == "a"
            }
            assert got == full, fixpoint.__name__
            assert not any(
                item.predicate.startswith("magic__") for item in demanded
            )

    def test_fixpoint_counts_into_registry(self):
        metrics = MetricsRegistry()
        seminaive_least_fixpoint(
            _tc().rules,
            list(_tc_db().facts),
            stats=metrics,
            demand="on",
            query=parse_atom("tc(a, Y)"),
        )
        assert metrics.counter("demand.magic_facts").value > 0


class TestSessionDemand:
    def test_model_session_routes_demand(self):
        rules = hamiltonian_rulebase()
        db = graph_db(["n1", "n2", "n3"], [("n1", "n2"), ("n2", "n3")])
        on = Session(rules, "model", demand="on")
        off = Session(rules, "model")
        assert on.ask(db, "path(n1)") is off.ask(db, "path(n1)")
        assert on.answers(db, "path(X)") == off.answers(db, "path(X)")
        assert on.metrics.counter("demand.rules_rewritten").value > 0

    def test_topdown_session_accepts_and_ignores(self):
        rules = _tc()
        db = _tc_db()
        session = Session(rules, "topdown", demand="on")
        assert session.ask(db, "tc(a, d)") is True

    def test_invalid_demand_mode_rejected(self):
        from repro.core.errors import EvaluationError

        with pytest.raises(EvaluationError):
            Session(_tc(), "model", demand="maybe")


class TestSurfaces:
    def test_cli_explain_demand(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "tc.dl"
        rules.write_text(TC_RULES)
        assert main(["explain", str(rules), "tc(a, Y)", "--show-rewrite"]) == 0
        out = capsys.readouterr().out
        assert "magic__tc__bf" in out
        assert "% guarded rules" in out

    def test_cli_explain_demand_rejection_exits_nonzero(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        rules = tmp_path / "tc.dl"
        rules.write_text(TC_RULES)
        assert main(["explain", str(rules), "~tc(a, Y)", "--show-rewrite"]) == 1
        assert "rejected" in capsys.readouterr().out

    def test_cli_query_demand_flag(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "tc.dl"
        rules.write_text(TC_RULES)
        db = tmp_path / "graph.db"
        db.write_text(TWO_COMPONENT_DB)
        code = main(
            [
                "query",
                str(rules),
                "tc(a, d)",
                "-d",
                str(db),
                "-e",
                "model",
                "--demand",
                "on",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_cli_answers_demand_flag(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "tc.dl"
        rules.write_text(TC_RULES)
        db = tmp_path / "graph.db"
        db.write_text(TWO_COMPONENT_DB)
        code = main(
            [
                "answers",
                str(rules),
                "tc(a, Y)",
                "-d",
                str(db),
                "-e",
                "model",
                "--demand",
                "auto",
            ]
        )
        assert code == 0
        rows = capsys.readouterr().out.split()
        assert sorted(rows) == ["a", "b", "c", "d"]

    def test_repl_explain_demand(self):
        from repro.repl import Repl

        repl = Repl(hamiltonian_rulebase())
        output = repl.feed(":explain demand path(n1)")
        assert "magic__path__b" in output
        assert "% seed" in output

    def test_repl_explain_demand_usage(self):
        from repro.repl import Repl

        assert "usage" in Repl(_tc()).feed(":explain demand")

    def test_repl_plain_explain_still_works(self):
        from repro.repl import Repl

        repl = Repl(_tc(), Database([atom("edge", "a", "b")]))
        assert "tc(a, b)" in repl.feed(":explain tc(a, b)")
