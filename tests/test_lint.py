"""Tests for the rulebase linter."""

import pytest

from repro.analysis.lint import LintFinding, lint
from repro.core.parser import parse_program
from repro.library import (
    example10_rulebase,
    graduation_rulebase,
    hamiltonian_rulebase,
    parity_rulebase,
)


def codes(rulebase, severity=None):
    findings = lint(rulebase)
    if severity is not None:
        findings = [f for f in findings if f.severity == severity]
    return [f.code for f in findings]


class TestFindings:
    def test_clean_rulebase(self):
        rb = parse_program("p(X) :- q(X), ~r(X).")
        assert codes(rb, "warning") == []

    def test_unsafe_head(self):
        rb = parse_program("p(X) :- marker.")
        assert "unsafe-head" in codes(rb)

    def test_unsafe_head_names_variables(self):
        rb = parse_program("p(X, Y) :- q(X).")
        finding = next(f for f in lint(rb) if f.code == "unsafe-head")
        assert "Y" in finding.message and "X" not in finding.message.split("not")[0].split("(s)")[1]

    def test_floating_hypothesis(self):
        rb = parse_program("p :- q(X)[add: r(X)].")
        assert "floating-hypothesis" in codes(rb)

    def test_anchored_hypothesis_is_fine(self):
        rb = parse_program("p :- d(X), q(X)[add: r(X)].")
        assert "floating-hypothesis" not in codes(rb)

    def test_ground_hypothesis_is_fine(self):
        # No variables at all: nothing to enumerate.
        rb = parse_program("p :- q[add: r].")
        assert "floating-hypothesis" not in codes(rb)

    def test_unused_predicate_is_info(self):
        rb = parse_program("helper(X) :- q(X). main :- q(z).")
        assert "unused-predicate" in codes(rb, "info")
        assert "unused-predicate" not in codes(rb, "warning")

    def test_zero_ary_entry_points_not_flagged(self):
        rb = parse_program("yes :- q(X).")
        assert "unused-predicate" not in codes(rb)

    def test_undefined_reference_is_info(self):
        rb = parse_program("p(X) :- edb_relation(X).")
        findings = [f for f in lint(rb) if f.code == "undefined-reference"]
        assert findings and all(f.severity == "info" for f in findings)

    def test_inserted_predicates_not_undefined(self):
        rb = parse_program("p :- q[add: marker]. q :- marker.")
        assert "undefined-reference" not in codes(rb)

    def test_constant_symbols_info(self):
        findings = [
            f for f in lint(graduation_rulebase()) if f.code == "constant-symbols"
        ]
        assert findings and findings[0].severity == "info"

    def test_negation_cycle_warning(self):
        rb = parse_program("a :- ~b. b :- ~a.")
        assert "negation-cycle" in codes(rb, "warning")

    def test_not_linearly_stratified_info(self):
        assert "not-linearly-stratified" in codes(example10_rulebase(), "info")

    def test_str_rendering_uses_line_col_not_rule_text(self):
        rb = parse_program("p(X) :- marker.")
        finding = next(f for f in lint(rb) if f.code == "unsafe-head")
        text = str(finding)
        assert text.startswith("[warning:unsafe-head]")
        assert "at 1:1" in text
        assert "p(X) :- marker." not in text

    def test_verbose_rendering_includes_rule_text(self):
        rb = parse_program("p(X) :- marker.")
        finding = next(f for f in lint(rb) if f.code == "unsafe-head")
        assert "p(X) :- marker." in finding.render(verbose=True)

    def test_findings_carry_file_spans(self):
        rb = parse_program("p(X) :- marker.", filename="prog.dl")
        finding = next(f for f in lint(rb) if f.code == "unsafe-head")
        assert finding.location == "prog.dl:1:1"


class TestPaperRulebases:
    def test_hamiltonian_flags_its_deliberate_unsafe_rule(self):
        # path(X) :- ~select(Y). is deliberately unsafe in the paper.
        findings = lint(hamiltonian_rulebase())
        unsafe = [f for f in findings if f.code == "unsafe-head"]
        assert len(unsafe) == 1
        assert "path" in str(unsafe[0].rule)

    def test_parity_rulebase_is_warning_clean(self):
        assert codes(parity_rulebase(), "warning") == []
