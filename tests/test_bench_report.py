"""Tests for the benchmark report generator (benchmarks/report.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
_spec = importlib.util.spec_from_file_location("bench_report", _REPORT_PATH)
report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(report)


@pytest.fixture
def sample_json(tmp_path):
    payload = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_e1_chain.py::test_chain[8]",
                "stats": {"median": 0.00042},
                "extra_info": {"chain_length": 8, "sigma_goals": 19},
            },
            {
                "fullname": "benchmarks/bench_e1_chain.py::test_chain[4]",
                "stats": {"median": 0.0002},
                "extra_info": {"chain_length": 4},
            },
            {
                "fullname": "benchmarks/bench_e5_hamiltonian.py::test_x[3]",
                "stats": {"median": 1.25},
                "extra_info": {},
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestReport:
    def test_groups_by_experiment_file(self, sample_json, capsys):
        assert report.main(sample_json) == 0
        out = capsys.readouterr().out
        assert "== bench_e1_chain.py ==" in out
        assert "== bench_e5_hamiltonian.py ==" in out

    def test_rows_sorted_and_annotated(self, sample_json, capsys):
        report.main(sample_json)
        out = capsys.readouterr().out
        # Parameter annotations from extra_info appear on the row.
        assert "chain_length=8" in out and "sigma_goals=19" in out
        # Rows are sorted by name within an experiment.
        assert out.index("test_chain[4]") < out.index("test_chain[8]")

    def test_time_formatting(self):
        assert report._format_seconds(2.5e-7).strip().endswith("us")
        assert report._format_seconds(0.0042).strip().endswith("ms")
        assert report._format_seconds(3.2).strip().endswith("s")

    def test_empty_payload(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        assert report.main(str(path)) == 0
        assert capsys.readouterr().out == ""
