"""Tests for the benchmark report generator (benchmarks/report.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
_spec = importlib.util.spec_from_file_location("bench_report", _REPORT_PATH)
report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(report)


@pytest.fixture
def sample_json(tmp_path):
    payload = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_e1_chain.py::test_chain[8]",
                "stats": {"median": 0.00042},
                "extra_info": {"chain_length": 8, "sigma_goals": 19},
            },
            {
                "fullname": "benchmarks/bench_e1_chain.py::test_chain[4]",
                "stats": {"median": 0.0002},
                "extra_info": {"chain_length": 4},
            },
            {
                "fullname": "benchmarks/bench_e5_hamiltonian.py::test_x[3]",
                "stats": {"median": 1.25},
                "extra_info": {},
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestReport:
    def test_groups_by_experiment_file(self, sample_json, capsys):
        assert report.main(sample_json) == 0
        out = capsys.readouterr().out
        assert "== bench_e1_chain.py ==" in out
        assert "== bench_e5_hamiltonian.py ==" in out

    def test_rows_sorted_and_annotated(self, sample_json, capsys):
        report.main(sample_json)
        out = capsys.readouterr().out
        # Parameter annotations from extra_info appear on the row.
        assert "chain_length=8" in out and "sigma_goals=19" in out
        # Rows are sorted by name within an experiment.
        assert out.index("test_chain[4]") < out.index("test_chain[8]")

    def test_time_formatting(self):
        assert report._format_seconds(2.5e-7).strip().endswith("us")
        assert report._format_seconds(0.0042).strip().endswith("ms")
        assert report._format_seconds(3.2).strip().endswith("s")

    def test_empty_payload(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        assert report.main(str(path)) == 0
        assert capsys.readouterr().out == ""

    def test_missing_extra_info_annotated(self, sample_json, capsys):
        """A benchmark without parameters says so instead of a blank."""
        report.main(sample_json)
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "test_x[3]" in l)
        assert "(unparameterized)" in line

    def test_nested_extra_info_summarized(self, tmp_path, capsys):
        payload = {
            "benchmarks": [
                {
                    "fullname": "benchmarks/bench_a.py::test_m",
                    "stats": {"median": 0.1},
                    "extra_info": {"metrics": {"prove.sigma_goals": 4, "x": 1}},
                }
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        report.main(str(path))
        assert "metrics[2]" in capsys.readouterr().out


class TestMerge:
    def test_merge_creates_and_appends(self, sample_json, tmp_path, capsys):
        merged_path = tmp_path / "BENCH_ALL.json"
        assert report.main(sample_json, merge_into=str(merged_path)) == 0
        assert report.main(sample_json, merge_into=str(merged_path)) == 0
        merged = json.loads(merged_path.read_text())
        assert len(merged["runs"]) == 2
        run = merged["runs"][0]
        assert run["source"] == sample_json
        names = [bench["fullname"] for bench in run["benchmarks"]]
        assert "benchmarks/bench_e1_chain.py::test_chain[8]" in names

    def test_merge_preserves_extra_info(self, sample_json, tmp_path):
        merged_path = tmp_path / "BENCH_ALL.json"
        report.merge_runs(
            json.loads(Path(sample_json).read_text()),
            sample_json,
            str(merged_path),
        )
        merged = json.loads(merged_path.read_text())
        by_name = {
            bench["fullname"]: bench
            for bench in merged["runs"][0]["benchmarks"]
        }
        chain8 = by_name["benchmarks/bench_e1_chain.py::test_chain[8]"]
        assert chain8["extra_info"] == {"chain_length": 8, "sigma_goals": 19}
        assert chain8["median"] == 0.00042

    def test_merge_tolerates_corrupt_target(self, sample_json, tmp_path):
        merged_path = tmp_path / "BENCH_ALL.json"
        merged_path.write_text("not json {")
        assert report.main(sample_json, merge_into=str(merged_path)) == 0
        assert len(json.loads(merged_path.read_text())["runs"]) == 1
