"""Unit tests for repro.core.unify."""

from repro.core.terms import Constant, Variable, atom
from repro.core.unify import (
    ground_instances,
    match,
    match_args,
    rename_rule_apart,
    unify,
)


class TestMatch:
    def test_basic(self):
        binding = match(atom("edge", "X", "Y"), atom("edge", "a", "b"))
        assert binding == {Variable("X"): Constant("a"), Variable("Y"): Constant("b")}

    def test_predicate_mismatch(self):
        assert match(atom("p", "X"), atom("q", "a")) is None

    def test_arity_mismatch(self):
        assert match(atom("p", "X"), atom("p", "a", "b")) is None

    def test_constant_must_agree(self):
        assert match(atom("p", "a"), atom("p", "a")) == {}
        assert match(atom("p", "a"), atom("p", "b")) is None

    def test_repeated_variable(self):
        assert match(atom("p", "X", "X"), atom("p", "a", "a")) is not None
        assert match(atom("p", "X", "X"), atom("p", "a", "b")) is None

    def test_existing_binding_respected(self):
        binding = {Variable("X"): Constant("a")}
        assert match(atom("p", "X"), atom("p", "b"), binding) is None
        extended = match(atom("p", "X"), atom("p", "a"), binding)
        assert extended == binding

    def test_does_not_mutate_input_binding(self):
        binding = {}
        match(atom("p", "X"), atom("p", "a"), binding)
        assert binding == {}

    def test_match_args_zero_arity(self):
        assert match_args((), ()) == {}


class TestUnify:
    def test_var_to_var(self):
        binding = unify(atom("p", "X"), atom("p", "Y"))
        assert binding is not None
        # X and Y end up identified one way or the other.
        assert len(binding) == 1

    def test_var_to_constant_both_directions(self):
        assert unify(atom("p", "X"), atom("p", "a")) == {
            Variable("X"): Constant("a")
        }
        assert unify(atom("p", "a"), atom("p", "X")) == {
            Variable("X"): Constant("a")
        }

    def test_clash(self):
        assert unify(atom("p", "a"), atom("p", "b")) is None

    def test_chained(self):
        binding = unify(atom("p", "X", "X"), atom("p", "Y", "a"))
        # Following bindings must give X -> a.
        value = binding[Variable("X")]
        while isinstance(value, Variable):
            value = binding[value]
        assert value == Constant("a")


class TestGroundInstances:
    def test_enumerates_product(self):
        domain = [Constant("a"), Constant("b")]
        results = list(ground_instances([Variable("X"), Variable("Y")], domain))
        assert len(results) == 4

    def test_empty_variables_yields_base(self):
        assert list(ground_instances([], [Constant("a")])) == [{}]

    def test_empty_domain_with_variables_yields_nothing(self):
        assert list(ground_instances([Variable("X")], [])) == []

    def test_respects_existing_binding(self):
        domain = [Constant("a"), Constant("b")]
        binding = {Variable("X"): Constant("a")}
        results = list(
            ground_instances([Variable("X"), Variable("Y")], domain, binding)
        )
        assert len(results) == 2
        assert all(item[Variable("X")] == Constant("a") for item in results)

    def test_duplicate_variables_counted_once(self):
        domain = [Constant("a"), Constant("b")]
        results = list(
            ground_instances([Variable("X"), Variable("X")], domain)
        )
        assert len(results) == 2

    def test_yields_independent_dicts(self):
        domain = [Constant("a"), Constant("b")]
        results = list(ground_instances([Variable("X")], domain))
        results[0][Variable("Z")] = Constant("z")
        assert Variable("Z") not in results[1]


class TestRenameApart:
    def test_fresh_names(self):
        renaming = rename_rule_apart([Variable("X"), Variable("Y")])
        assert len(renaming) == 2
        assert all("#" in target.name for target in renaming.values())
