"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

HAMILTONIAN = """
yes :- node(X), path(X)[add: pnode(X)].
path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
path(X) :- ~select(Y).
select(Y) :- node(Y), ~pnode(Y).
"""

GRAPH = """
node(a). node(b). node(c).
edge(a, b). edge(b, c).
"""


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.dl"
    path.write_text(HAMILTONIAN)
    return str(path)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "graph.dl"
    path.write_text(GRAPH)
    return str(path)


class TestClassify:
    def test_reports_np(self, rules_file, capsys):
        assert main(["classify", rules_file]) == 0
        out = capsys.readouterr().out
        assert "NP" in out

    def test_undefined_rulebase(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text("a :- ~b. b :- ~a.")
        assert main(["classify", str(path)]) == 0
        assert "undefined" in capsys.readouterr().out


class TestStratify:
    def test_prints_segments(self, rules_file, capsys):
        assert main(["stratify", rules_file]) == 0
        out = capsys.readouterr().out
        assert "Sigma_1" in out and "Delta_1" in out

    def test_error_on_unstratifiable(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text("a :- a[add: b], a[add: c].")
        assert main(["stratify", str(path)]) == 3
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_yes(self, rules_file, db_file, capsys):
        assert main(["query", rules_file, "yes", "-d", db_file]) == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_no_exit_code(self, rules_file, tmp_path, capsys):
        graph = tmp_path / "star.dl"
        graph.write_text("node(a). node(b). node(c). edge(a, b). edge(a, c).")
        assert main(["query", rules_file, "yes", "-d", str(graph)]) == 1
        assert capsys.readouterr().out.strip() == "no"

    def test_engine_flag(self, rules_file, db_file, capsys):
        assert main(["query", rules_file, "yes", "-d", db_file, "-e", "model"]) == 0

    def test_missing_db_means_empty(self, rules_file, capsys):
        assert main(["query", rules_file, "yes"]) == 1

    def test_parse_error_is_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.dl"
        path.write_text("p(a")
        assert main(["query", str(path), "p(a)"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent/rules.dl", "p"]) == 2


class TestAnswers:
    def test_enumerates_sorted(self, rules_file, db_file, capsys):
        assert main(["answers", rules_file, "select(Y)", "-d", db_file]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines == ["a", "b", "c"]


class TestGraph:
    def test_emits_dot(self, rules_file, capsys):
        assert main(["graph", rules_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"yes" -> "path" [style=dotted, label="[add]"];' in out


class TestLint:
    def test_findings_printed(self, rules_file, capsys):
        code = main(["lint", rules_file])
        out = capsys.readouterr().out
        assert "unsafe-head" in out  # path(X) :- ~select(Y).
        assert code == 1  # warnings present

    def test_clean_rulebase(self, tmp_path, capsys):
        path = tmp_path / "clean.dl"
        path.write_text("p(X) :- q(X).")
        assert main(["lint", str(path)]) == 0


class TestExplain:
    def test_prints_derivation(self, rules_file, db_file, capsys):
        assert main(["explain", rules_file, "yes", "-d", db_file]) == 0
        out = capsys.readouterr().out
        assert "[by rule:" in out and "pnode" in out

    def test_not_provable(self, rules_file, capsys):
        assert main(["explain", rules_file, "yes"]) == 1
        assert "not provable" in capsys.readouterr().out


class TestRepl:
    def test_scripted(self, rules_file, db_file, capsys, monkeypatch):
        import io
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin", io.StringIO("?- yes.\n:quit\n")
        )
        assert main(["repl", rules_file, "-d", db_file]) == 0
        out = capsys.readouterr().out
        assert "yes" in out and "bye" in out


class TestModel:
    def test_prints_model(self, tmp_path, capsys):
        rules = tmp_path / "tc.dl"
        rules.write_text("path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).")
        db = tmp_path / "edges.dl"
        db.write_text("edge(a, b). edge(b, c).")
        assert main(["model", str(rules), "-d", str(db)]) == 0
        out = capsys.readouterr().out
        assert "path(a, c)." in out


class TestExitCodes:
    def test_evaluation_error_is_4(self, rules_file, db_file, capsys):
        # answers() needs a plain atom pattern -> EvaluationError.
        code = main(["answers", rules_file, "~select(Y)", "-d", db_file])
        assert code == 4
        assert "evaluation-error" in capsys.readouterr().err

    def test_validation_error_is_2(self, tmp_path, capsys):
        rules = tmp_path / "bad.dl"
        rules.write_text("p :- ~q[add: r].")
        assert main(["query", str(rules), "p"]) == 2


class TestBudgetFlags:
    def test_exhausted_query_exits_5(self, rules_file, db_file, capsys):
        code = main(["query", rules_file, "yes", "-d", db_file,
                     "--max-steps", "3"])
        captured = capsys.readouterr()
        assert code == 5
        assert "resource-exhausted" in captured.err
        assert "partial results" in captured.err

    def test_exhausted_answers_exits_5(self, rules_file, db_file, capsys):
        code = main(["answers", rules_file, "select(Y)", "-d", db_file,
                     "--max-steps", "1"])
        assert code == 5
        assert "resource-exhausted" in capsys.readouterr().err

    def test_exhausted_model_exits_5(self, rules_file, db_file, capsys):
        code = main(["model", rules_file, "-d", db_file, "--max-atoms", "1"])
        assert code == 5
        assert "max_atoms=1" in capsys.readouterr().err

    def test_exhausted_profile_exits_5(self, rules_file, db_file, capsys):
        code = main(["profile", rules_file, "-q", "yes", "-d", db_file,
                     "--max-steps", "3"])
        assert code == 5

    def test_generous_budget_changes_nothing(self, rules_file, db_file, capsys):
        assert main(["query", rules_file, "yes", "-d", db_file,
                     "--timeout", "60", "--max-steps", "1000000"]) == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_proof_depth_flag(self, rules_file, db_file, capsys):
        code = main(["query", rules_file, "yes", "-d", db_file,
                     "--max-proof-depth", "1"])
        assert code == 5


class TestServe:
    """Startup-path exit codes for ``hypodatalog serve``; the live
    server behaviour is covered end to end in tests/test_server.py."""

    def test_parse_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.dl"
        path.write_text("p(a :- q.")
        assert main(["serve", str(path), "--port", "0"]) == 2

    def test_unstratifiable_rulebase_exits_3(self, tmp_path, capsys):
        path = tmp_path / "cycle.dl"
        path.write_text("p :- ~q. q :- ~p.")
        assert main(["serve", str(path), "--port", "0", "-e", "model"]) == 3

    def test_bad_engine_is_usage_error(self, rules_file, capsys):
        # -e choices are validated by argparse: usage error, exit 2.
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", rules_file, "--port", "0", "-e", "bogus"])
        assert excinfo.value.code == 2

    def test_flag_surface_parses(self, rules_file, capsys):
        # The full flag surface must parse; a bogus flag is a usage
        # error (argparse exits 2 via SystemExit).
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", rules_file, "--no-such-flag"])
        assert excinfo.value.code == 2
