"""Unit tests for the expressibility compiler (Lemma 2 / Corollary 2)."""

import pytest

from repro.analysis.classify import classify
from repro.core.errors import CompilationError
from repro.engine.query import Session
from repro.machines.oracle import Cascade
from repro.machines.turing import BLANK, Machine, Step
from repro.queries.compile import (
    Signature,
    bitvector_symbol,
    compile_typed_query,
    compile_yes_no_query,
    initial_rules,
    query_database,
    relation_empty_machine,
    relation_nonempty_machine,
    time_bound_for,
)
from repro.queries.generic import check_genericity


@pytest.fixture(scope="module")
def unary_signature():
    return Signature((("p", 1),))


@pytest.fixture(scope="module")
def nonempty_rulebase(unary_signature):
    machine = relation_nonempty_machine(unary_signature, "p")
    return compile_yes_no_query(Cascade((machine,)), unary_signature)


@pytest.fixture(scope="module")
def empty_rulebase(unary_signature):
    machine = relation_empty_machine(unary_signature, "p")
    return compile_yes_no_query(Cascade((machine,)), unary_signature)


class TestSignature:
    def test_arities(self, unary_signature):
        assert unary_signature.data_arity == 1
        assert unary_signature.tape_arity == 2

    def test_symbols(self):
        sig = Signature((("p", 1), ("q", 2)))
        assert sig.symbols() == ["s00", "s01", "s10", "s11"]
        assert sig.data_arity == 2

    def test_bitvector_symbol(self):
        assert bitvector_symbol((True, False, True)) == "s101"

    def test_rejects_empty_signature(self):
        with pytest.raises(CompilationError):
            Signature(())

    def test_rejects_zero_arity(self):
        with pytest.raises(CompilationError):
            Signature((("p", 0),))

    def test_time_bound(self, unary_signature):
        assert time_bound_for(unary_signature, 3) == 9


class TestInitialRules:
    def test_one_rule_per_bitvector_plus_blank(self, unary_signature):
        rules = initial_rules(unary_signature)
        heads = {item.head.predicate for item in rules}
        assert heads == {"initial_s0", "initial_s1", "initial_blank"}

    def test_negation_writes_zero_bits(self, unary_signature):
        from repro.core.ast import Negated

        rules = initial_rules(unary_signature)
        zero_rule = next(
            item for item in rules if item.head.predicate == "initial_s0"
        )
        assert any(isinstance(premise, Negated) for premise in zero_rule.body)


class TestQueryDatabase:
    def test_builds_domain_and_relations(self, unary_signature):
        db = query_database(unary_signature, ["a", "b"], {"p": ["a"]})
        assert db.rows("dom") == {("a",), ("b",)}
        assert db.rows("p") == {("a",)}

    def test_rejects_foreign_relation(self, unary_signature):
        with pytest.raises(CompilationError):
            query_database(unary_signature, ["a"], {"ghost": ["a"]})

    def test_rejects_values_outside_domain(self, unary_signature):
        with pytest.raises(CompilationError):
            query_database(unary_signature, ["a"], {"p": ["z"]})


class TestLemma2:
    def test_compiled_rulebase_is_constant_free(self, nonempty_rulebase):
        assert nonempty_rulebase.is_constant_free

    def test_strata_match_cascade_depth(self, nonempty_rulebase):
        report = classify(nonempty_rulebase)
        assert report.class_name == "NP"
        assert report.strata == 1

    @pytest.mark.parametrize(
        "domain,rows,expected",
        [
            (["a", "b"], [], False),
            (["a", "b"], ["a"], True),
            (["a", "b"], ["b"], True),
            (["a", "b"], ["a", "b"], True),
            (["a", "b", "c"], ["c"], True),
            (["a", "b", "c"], [], False),
        ],
    )
    def test_nonempty_query(self, nonempty_rulebase, unary_signature, domain, rows, expected):
        db = query_database(unary_signature, domain, {"p": rows})
        assert Session(nonempty_rulebase, "prove").ask(db, "yes") is expected

    @pytest.mark.parametrize(
        "domain,rows,expected",
        [
            (["a", "b"], [], True),
            (["a", "b"], ["a"], False),
            (["a", "b", "c"], [], True),
            (["a", "b", "c"], ["b", "c"], False),
        ],
    )
    def test_empty_query_needs_end_detection(
        self, empty_rulebase, unary_signature, domain, rows, expected
    ):
        db = query_database(unary_signature, domain, {"p": rows})
        assert Session(empty_rulebase, "prove").ask(db, "yes") is expected

    def test_genericity_of_compiled_query(self, nonempty_rulebase, unary_signature):
        session = Session(nonempty_rulebase, "prove")

        def query(db):
            return {()} if session.ask(db, "yes") else set()

        db = query_database(unary_signature, ["a", "b"], {"p": ["b"]})
        assert check_genericity(query, db, trials=3)

    def test_single_element_domain_degenerates(self, nonempty_rulebase, unary_signature):
        # Documented limitation: with n = 1 the derived counter has one
        # value, so no machine step can happen and 'yes' is unprovable.
        db = query_database(unary_signature, ["a"], {"p": ["a"]})
        assert not Session(nonempty_rulebase, "prove").ask(db, "yes")


class TestBinarySignature:
    """l = 2, L = 3: the tuple counters and page scheme at higher arity."""

    @pytest.fixture(scope="class")
    def binary_rulebase(self):
        signature = Signature((("p", 2),))
        machine = relation_nonempty_machine(signature, "p")
        return signature, compile_yes_no_query(Cascade((machine,)), signature)

    def test_arities(self):
        signature = Signature((("p", 2),))
        assert signature.data_arity == 2
        assert signature.tape_arity == 3
        assert time_bound_for(signature, 2) == 8

    @pytest.mark.parametrize(
        "rows,expected",
        [([], False), ([("a", "b")], True), ([("b", "b")], True),
         ([("a", "a"), ("b", "a")], True)],
    )
    def test_nonempty_binary(self, binary_rulebase, rows, expected):
        signature, rulebase = binary_rulebase
        db = query_database(signature, ["a", "b"], {"p": rows})
        assert Session(rulebase, "prove").ask(db, "yes") is expected

    def test_constant_free_and_np(self, binary_rulebase):
        _, rulebase = binary_rulebase
        assert rulebase.is_constant_free
        assert classify(rulebase).class_name == "NP"


class TestCorollary2:
    @pytest.fixture(scope="class")
    def membership_query(self):
        """out(x) iff p(x): machine accepts when some cell has both the
        p0 (candidate) and p bits set."""
        signature = Signature((("p0", 1), ("p", 1)))
        steps = []
        for symbol in signature.symbols():
            if symbol == "s11":
                steps.append(Step("scan", symbol, "acc", symbol, 0))
            else:
                steps.append(Step("scan", symbol, "scan", symbol, 1))
        machine = Machine(
            "both", tuple(steps), "scan", frozenset({"acc"})
        )
        rulebase = compile_typed_query(Cascade((machine,)), signature, 1)
        return signature, rulebase

    def test_out_rule_semantics(self, membership_query):
        signature, rulebase = membership_query
        db = query_database(signature, ["a", "b"], {"p": ["b"]})
        assert Session(rulebase, "prove").answers(db, "out(X)") == {("b",)}

    def test_marker_must_be_in_signature(self):
        signature = Signature((("p", 1),))
        machine = relation_nonempty_machine(signature, "p")
        with pytest.raises(CompilationError):
            compile_typed_query(Cascade((machine,)), signature, 1)


class TestSigma2Expressibility:
    """Lemma 2 one level up: a Sigma_2^P compiled query with a genuine
    oracle boundary ("relation p is empty" via a complemented relay)."""

    @pytest.fixture(scope="class")
    def sigma2_rulebase(self):
        from repro.machines.library import contains_one
        from repro.queries.compile import translating_relay_machine

        signature = Signature((("p", 1),))
        top = translating_relay_machine(signature, "p", accept_on_yes=False)
        cascade = Cascade((top, contains_one()))
        rulebase = compile_yes_no_query(
            cascade, signature, extra_time_arity=1
        )
        return signature, rulebase

    def test_classified_sigma2(self, sigma2_rulebase):
        _, rulebase = sigma2_rulebase
        report = classify(rulebase)
        assert report.class_name == "Sigma_2^P"
        assert report.strata == 2
        assert rulebase.is_constant_free

    @pytest.mark.parametrize(
        "rows,expected",
        [([], True), (["a"], False), (["b"], False), (["a", "b"], False)],
    )
    def test_empty_via_oracle(self, sigma2_rulebase, rows, expected):
        signature, rulebase = sigma2_rulebase
        db = query_database(signature, ["a", "b"], {"p": rows})
        assert Session(rulebase, "prove").ask(db, "yes") is expected

    def test_relay_machine_shape(self):
        from repro.queries.compile import translating_relay_machine

        signature = Signature((("p", 1),))
        machine = translating_relay_machine(signature, "p", True)
        assert machine.uses_oracle
        assert machine.oracle_alphabet >= {"0", "1"}

    def test_initial_rules_multi_page(self):
        signature = Signature((("p", 1),))
        rules = initial_rules(signature, pages=2)
        data_rule = next(
            item for item in rules if item.head.predicate == "initial_s1"
        )
        assert data_rule.head.arity == 3  # two pages + one coordinate
        blank_rules = [
            item for item in rules if item.head.predicate == "initial_blank"
        ]
        assert len(blank_rules) == 2  # one per page position

    def test_pages_must_be_positive(self):
        with pytest.raises(CompilationError):
            initial_rules(Signature((("p", 1),)), pages=0)


class TestScannerMachines:
    def test_unknown_relation_rejected(self, unary_signature):
        with pytest.raises(CompilationError):
            relation_nonempty_machine(unary_signature, "ghost")

    def test_scanners_are_plain_machines(self, unary_signature):
        assert not relation_nonempty_machine(unary_signature, "p").uses_oracle
        assert not relation_empty_machine(unary_signature, "p").uses_oracle
