"""Unit tests for the Section 5.1 machine-to-rulebase encoding."""

import pytest

from repro.analysis.classify import classify
from repro.analysis.stratify import linear_stratification
from repro.core.errors import MachineError
from repro.core.terms import Atom, Constant, atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.machines.encode import (
    cascade_database,
    cascade_rulebase,
    cell_predicate,
    control_predicate,
    counter_facts,
    encode_and_ask,
    symbol_name,
)
from repro.machines.library import (
    contains_one,
    contains_one_cascade,
    even_ones,
    first_or_second_a,
    no_ones_cascade,
    suggested_time_bound,
)
from repro.machines.oracle import Cascade
from repro.machines.turing import BLANK


class TestNaming:
    def test_symbol_name_blank(self):
        assert symbol_name(BLANK) == "blank"
        assert symbol_name("1") == "1"

    def test_predicate_names(self):
        assert cell_predicate(2, "1") == "cell2_1"
        assert cell_predicate(1, BLANK) == "cell1_blank"
        assert control_predicate(3, "scan") == "control3_scan"


class TestCounterFacts:
    def test_shape(self):
        facts = counter_facts(3)
        assert atom("first", 0) in facts
        assert atom("last", 2) in facts
        assert atom("next", 0, 1) in facts
        assert atom("next", 1, 2) in facts
        assert len(facts) == 4

    def test_singleton_counter(self):
        facts = counter_facts(1)
        assert atom("first", 0) in facts
        assert atom("last", 0) in facts
        assert len(facts) == 2

    def test_rejects_zero(self):
        with pytest.raises(MachineError):
            counter_facts(0)


class TestDatabase:
    def test_input_and_blanks(self):
        cascade = Cascade((contains_one(),))
        db = cascade_database(cascade, ["0", "1"], 4)
        assert atom("cell1_0", 0, 0) in db
        assert atom("cell1_1", 1, 0) in db
        assert atom("cell1_blank", 2, 0) in db
        assert atom("cell1_blank", 3, 0) in db

    def test_lower_tapes_blank(self):
        cascade = contains_one_cascade()
        db = cascade_database(cascade, ["1"], 5)
        # Top is level 2; level 1 is all blank.
        assert atom("cell1_blank", 0, 0) in db
        assert atom("cell2_1", 0, 0) in db

    def test_polynomial_size(self):
        # |DB(s)| is O(k * T): counter + one cell atom per tape position.
        cascade = contains_one_cascade()
        for bound in (4, 8, 16):
            db = cascade_database(cascade, ["1"], bound)
            # counter: (bound + 1) facts; two tapes: 2 * bound cells.
            assert len(db) == 3 * bound + 1

    def test_rejects_foreign_symbols(self):
        cascade = Cascade((contains_one(),))
        with pytest.raises(MachineError):
            cascade_database(cascade, ["z"], 4)

    def test_rejects_oversized_input(self):
        cascade = Cascade((contains_one(),))
        with pytest.raises(MachineError):
            cascade_database(cascade, ["0"] * 9, 4)


class TestRulebaseShape:
    def test_k_strata(self):
        for cascade, expected in [
            (Cascade((contains_one(),)), 1),
            (contains_one_cascade(), 2),
        ]:
            rulebase = cascade_rulebase(cascade)
            assert linear_stratification(rulebase).k == expected

    def test_classification_matches_theorem1(self):
        assert classify(cascade_rulebase(Cascade((contains_one(),)))).class_name == "NP"
        assert classify(cascade_rulebase(no_ones_cascade())).class_name == "Sigma_2^P"

    def test_constant_free(self):
        assert cascade_rulebase(no_ones_cascade()).is_constant_free

    def test_negation_only_at_oracle_and_frame(self):
        from repro.core.ast import Negated

        rulebase = cascade_rulebase(contains_one_cascade())
        negated = [
            premise.atom.predicate
            for item in rulebase
            for premise in item.body
            if isinstance(premise, Negated)
        ]
        assert set(negated) <= {"oracle1", "active1", "active2"}
        assert "oracle1" in negated


class TestFormula3:
    """R(L), DB(s) |- ACCEPT iff the cascade accepts s."""

    @pytest.mark.parametrize("text", ["", "0", "1", "01", "10"])
    def test_k1_deterministic(self, text):
        cascade = Cascade((contains_one(),))
        bound = len(text) + 2
        expected = cascade.accepts(list(text), bound)
        assert encode_and_ask(cascade, list(text), bound) is expected
        assert expected == ("1" in text)

    @pytest.mark.parametrize("text", ["a", "b", "ab", "ba", "bb"])
    def test_k1_nondeterministic(self, text):
        cascade = Cascade((first_or_second_a(),))
        bound = len(text) + 2
        assert encode_and_ask(cascade, list(text), bound) == ("a" in text[:2])

    @pytest.mark.parametrize("text", ["", "11", "101"])
    def test_k1_even_ones(self, text):
        cascade = Cascade((even_ones(),))
        bound = len(text) + 2
        assert encode_and_ask(cascade, list(text), bound) == (
            text.count("1") % 2 == 0
        )

    @pytest.mark.parametrize("text", ["", "0", "1", "01"])
    def test_k2_yes_relay(self, text):
        cascade = contains_one_cascade()
        bound = suggested_time_bound(2, len(text))
        expected = cascade.accepts(list(text), bound)
        assert encode_and_ask(cascade, list(text), bound) is expected

    @pytest.mark.parametrize("text", ["", "0", "1", "01"])
    def test_k2_complement_relay(self, text):
        cascade = no_ones_cascade()
        bound = suggested_time_bound(2, len(text))
        assert encode_and_ask(cascade, list(text), bound) == ("1" not in text)

    def test_both_engines_agree(self):
        cascade = Cascade((contains_one(),))
        for text in ["1", "0"]:
            bound = len(text) + 2
            prove = encode_and_ask(cascade, list(text), bound, engine="prove")
            model = encode_and_ask(cascade, list(text), bound, engine="model")
            assert prove == model == ("1" in text)

    @pytest.mark.parametrize("text", ["", "0", "1"])
    def test_k3_double_relay(self, text):
        from repro.machines.library import three_level_cascade

        cascade = three_level_cascade()
        bound = suggested_time_bound(3, len(text))
        expected = cascade.accepts(list(text), bound)
        assert encode_and_ask(cascade, list(text), bound) is expected
        assert expected == ("1" not in text)

    def test_k3_classification(self):
        from repro.machines.library import three_level_cascade

        rulebase = cascade_rulebase(three_level_cascade())
        assert classify(rulebase).class_name == "Sigma_3^P"
        assert linear_stratification(rulebase).k == 3
