"""Binding-mode (adornment) abstract interpretation."""

from repro.analysis.modes import (
    ALL_FREE,
    adorn,
    analyze_modes,
    rule_dataflow,
)
from repro.core.parser import parse_program, parse_rule
from repro.core.terms import Variable, atom


class TestAdorn:
    def test_all_free(self):
        assert adorn(atom("edge", "X", "Y"), []) == "ff"

    def test_bound_variable(self):
        assert adorn(atom("edge", "X", "Y"), [Variable("X")]) == "bf"

    def test_constant_is_bound(self):
        assert adorn(atom("take", "S", "cs452"), []) == "fb"

    def test_repeat_within_atom_is_bound(self):
        assert adorn(atom("edge", "X", "X"), []) == "fb"

    def test_zero_ary(self):
        assert adorn(atom("marker"), []) == ""

    def test_constant_then_variable(self):
        assert adorn(atom("p", "c", "X"), []) == "bf"

    def test_all_constants(self):
        assert adorn(atom("p", "c", "d"), []) == "bb"

    def test_triple_with_outer_repeat(self):
        assert adorn(atom("p", "X", "Y", "X"), []) == "ffb"

    def test_bound_variable_repeat_stays_bound(self):
        assert adorn(atom("p", "X", "X"), [Variable("X")]) == "bb"

    def test_repeat_does_not_leak_into_other_variables(self):
        # X's second occurrence is bound, but Y is still free.
        assert adorn(atom("p", "X", "X", "Y"), []) == "fbf"

    def test_constant_binds_nothing(self):
        # A constant argument never makes a *variable* bound.
        assert adorn(atom("p", "c", "X", "X"), []) == "bfb"


class TestRuleDataflow:
    def test_safe_rule_has_no_blowup(self):
        flow = rule_dataflow(parse_rule("p(X) :- q(X), r(X)."))
        assert flow.blowup_exponent == 0
        assert flow.grounded_variables == ()

    def test_unsafe_head_is_grounded(self):
        flow = rule_dataflow(parse_rule("p(X) :- marker."))
        assert [v.name for v in flow.head_grounded] == ["X"]
        assert flow.blowup_exponent == 1

    def test_negation_grounds_nonlocal_variables(self):
        # X is non-local (in the head); Y is local to the negation.
        flow = rule_dataflow(parse_rule("p(X) :- ~select(Y)."))
        assert [v.name for v in flow.grounded_variables] == ["X"]
        assert flow.blowup_exponent == 1

    def test_hypothetical_grounds_unbound_variables(self):
        flow = rule_dataflow(parse_rule("p :- q(X)[add: r(Y)]."))
        assert sorted(v.name for v in flow.grounded_variables) == ["X", "Y"]
        assert flow.blowup_exponent == 2

    def test_anchored_hypothetical_is_free(self):
        flow = rule_dataflow(parse_rule("p :- d(X), q(X)[add: r(X)]."))
        assert flow.blowup_exponent == 0

    def test_bound_head_adornment_binds_variables(self):
        flow = rule_dataflow(parse_rule("p(X) :- ~q(X)."), "b")
        assert flow.blowup_exponent == 0

    def test_cost_estimate_is_domain_power(self):
        flow = rule_dataflow(parse_rule("p :- q(X)[add: r(Y)]."))
        assert flow.cost_estimate(10) == 100.0

    def test_modes_follow_planner_order(self):
        rb = parse_program(
            "hit(X) :- wide(Y), anchor(X), link(X, Y).\n"
        )
        flow = rule_dataflow(rb.rules[0], rulebase=rb)
        order = [m.premise.goal.predicate for m in flow.modes]
        # The planner may pick any EDB guard first, but link must see
        # at least one bound position once a unary guard has run.
        assert set(order) == {"wide", "anchor", "link"}
        link_mode = next(m for m in flow.modes if m.premise.goal.predicate == "link")
        assert "b" in link_mode.adornment


class TestAnalyzeModes:
    def test_entry_points_default_to_outputs_all_free(self):
        rb = parse_program("out(X) :- helper(X). helper(X) :- base(X).")
        report = analyze_modes(rb)
        assert ("out", "f") in report.entry_points
        assert report.adornments["out"] == {"f"}

    def test_explicit_query_seeds_bound_positions(self):
        rb = parse_program("reach(X, Y) :- edge(X, Y).")
        report = analyze_modes(rb, queries=["reach(a, Y)"])
        assert report.adornments["reach"] == {"bf"}

    def test_recursive_call_propagates_adornment(self):
        rb = parse_program(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
        )
        report = analyze_modes(rb, queries=["reach(a, Y)"])
        assert "bf" in report.adornments["reach"]

    def test_unreachable_predicates_still_analyzed(self):
        # 'same' is referenced only by itself, so it is not an output;
        # the fixpoint must still cover its rule.
        rb = parse_program("same(X, Y) :- same(Y, X).")
        report = analyze_modes(rb)
        assert report.for_rule(rb.rules[0])

    def test_worst_exponent(self):
        rb = parse_program("p(X) :- ~q(Y).")
        report = analyze_modes(rb)
        assert report.worst_exponent(rb.rules[0]) == 1

    def test_fixpoint_terminates_on_mutual_recursion(self):
        rb = parse_program(
            "even(X) :- zero(X).\n"
            "even(X) :- succ(Y, X), odd(Y).\n"
            "odd(X) :- succ(Y, X), even(Y).\n"
        )
        report = analyze_modes(rb, queries=["even(a)"])
        assert report.adornments["even"] and report.adornments["odd"]

    def test_all_free_normalization(self):
        rb = parse_program("p(X, Y) :- q(X, Y).")
        flow = rule_dataflow(rb.rules[0], ALL_FREE, rulebase=rb)
        assert flow.adornment == "ff"
