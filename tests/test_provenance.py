"""Provenance layer: why / why-not / which-hypotheses explanations.

The invariant this file defends (docs/OBSERVABILITY.md): a recording
bottom-up evaluation captures enough per-atom derivation structure
that

* every atom of the perfect model replays to a proof the independent
  verifier accepts — without re-running the fixpoint;
* every absent atom gets a failure witness naming an unsupported
  premise per candidate rule;
* ``assumptions`` reports exactly the hypothetical additions a
  derivation used;

and with ``provenance=False`` (the default) the engine does exactly
the work it did before the layer existed (counter parity).
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database
from repro.core.errors import ResourceExhausted, StratificationError
from repro.core.terms import Atom, atom
from repro.engine.budget import Budget
from repro.engine.model import PerfectModelEngine
from repro.engine.proofs import Explainer, verify_proof
from repro.engine.query import Session
from repro.library.hamiltonian import graph_db, hamiltonian_rulebase
from repro.library.parity import parity_db, parity_rulebase
from repro.library.university import graduation_db, graduation_rulebase
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import (
    NULL_PROVENANCE,
    ProvenanceRecorder,
    format_assumptions,
    format_why_not,
)

from tests.test_differential import _random_database, _random_rulebase


def _recording(rulebase, **kwargs):
    return PerfectModelEngine(rulebase, provenance=True, **kwargs)


class TestWhyLibrary:
    """Acceptance round-trips on the paper's example rulebases."""

    def test_graduation_why_verifies(self):
        rulebase = graduation_rulebase()
        engine = _recording(rulebase)
        db = graduation_db()
        proof = engine.why(db, "within_one(tony)")
        assert proof is not None
        assert verify_proof(rulebase, proof)

    def test_why_on_db_fact_is_leaf(self):
        rulebase = graduation_rulebase()
        engine = _recording(rulebase)
        db = graduation_db()
        proof = engine.why(db, "take(sue, cs250)")
        assert proof is not None
        assert proof.rule is None
        assert verify_proof(rulebase, proof)

    def test_why_not_provable_returns_none(self):
        engine = _recording(graduation_rulebase())
        assert engine.why(graduation_db(), "grad(nobody)") is None

    def test_hypothetical_query_why(self):
        rulebase = graduation_rulebase()
        engine = _recording(rulebase)
        proof = engine.why(
            graduation_db(), "grad(tony)[add: take(tony, cs250)]"
        )
        assert proof is not None
        assert verify_proof(rulebase, proof)

    def test_parity_why_verifies(self):
        rulebase = parity_rulebase()
        engine = _recording(rulebase)
        db = parity_db(["a", "b"])
        proof = engine.why(db, "even")
        assert proof is not None
        assert verify_proof(rulebase, proof)

    def test_hamiltonian_why_verifies(self):
        rulebase = hamiltonian_rulebase()
        engine = _recording(rulebase)
        db = graph_db("abc", [("a", "b"), ("b", "c")])
        proof = engine.why(db, "yes")
        assert proof is not None
        assert verify_proof(rulebase, proof)

    def test_why_rejects_negated_query(self):
        from repro.core.errors import EvaluationError

        engine = _recording(graduation_rulebase())
        with pytest.raises(EvaluationError):
            engine.why(graduation_db(), "~grad(sue)")


class TestZeroReEvaluation:
    """``why`` replays recorded edges; it never re-runs the fixpoint."""

    def test_why_after_ask_fires_no_rules(self):
        metrics = MetricsRegistry()
        engine = PerfectModelEngine(
            graduation_rulebase(), metrics=metrics, provenance=True
        )
        db = graduation_db()
        assert engine.ask(db, "within_one(tony)")
        fired = metrics.counter("model.rule_firings").value
        proof = engine.why(db, "within_one(tony)")
        assert proof is not None
        assert metrics.counter("model.rule_firings").value == fired
        assert metrics.counter("prov.edges_replayed").value > 0

    def test_why_evaluates_on_demand_when_never_queried(self):
        engine = _recording(graduation_rulebase())
        proof = engine.why(graduation_db(), "grad(sue)")
        assert proof is not None


class TestWhyNot:
    def test_no_support_witness(self):
        engine = _recording(graduation_rulebase())
        report = engine.why_not(graduation_db(), "grad(pat)")
        assert report.kind == "absent"
        rendered = format_why_not(report)
        assert "not derivable: grad(pat)" in rendered
        assert "no support" in rendered

    def test_holds_report_when_derivable(self):
        engine = _recording(graduation_rulebase())
        report = engine.why_not(graduation_db(), "grad(sue)")
        assert report.kind == "holds"
        assert "derivable" in format_why_not(report)

    def test_blocked_by_negation(self):
        rulebase = parity_rulebase()
        engine = _recording(rulebase)
        db = parity_db(["a"])
        # One unmarked element: select(a) holds, so the rule
        # ``even :- ~select(X1)`` is blocked by negation.
        report = engine.why_not(db, "even")
        assert report.kind == "absent"
        assert "blocked by negation" in format_why_not(report)

    def test_undefined_predicate(self):
        engine = _recording(graduation_rulebase())
        report = engine.why_not(graduation_db(), "nosuch(tony)")
        assert report.kind == "absent"
        assert "no rule defines" in format_why_not(report)

    def test_works_without_provenance_flag(self):
        engine = PerfectModelEngine(graduation_rulebase())
        report = engine.why_not(graduation_db(), "grad(pat)")
        assert report.kind == "absent"


class TestAssumptions:
    """The acceptance triple: tony, sue, and the Hamiltonian path."""

    def test_tony_needs_cs250(self):
        engine = _recording(graduation_rulebase())
        assumed = engine.assumptions(graduation_db(), "within_one(tony)")
        assert assumed == frozenset({atom("take", "tony", "cs250")})

    def test_sue_needs_nothing(self):
        engine = _recording(graduation_rulebase())
        assumed = engine.assumptions(graduation_db(), "grad(sue)")
        assert assumed == frozenset()

    def test_hamiltonian_needs_every_pnode(self):
        engine = _recording(hamiltonian_rulebase())
        db = graph_db("abc", [("a", "b"), ("b", "c")])
        assumed = engine.assumptions(db, "yes")
        assert assumed == frozenset(
            {atom("pnode", "a"), atom("pnode", "b"), atom("pnode", "c")}
        )

    def test_query_level_additions_are_charged(self):
        engine = _recording(graduation_rulebase())
        assumed = engine.assumptions(
            graduation_db(), "grad(tony)[add: take(tony, cs250)]"
        )
        assert assumed == frozenset({atom("take", "tony", "cs250")})

    def test_not_provable_returns_none(self):
        engine = _recording(graduation_rulebase())
        assert engine.assumptions(graduation_db(), "grad(nobody)") is None

    def test_demand_on_agrees(self):
        for query in ("within_one(tony)", "grad(sue)"):
            off = _recording(graduation_rulebase())
            on = _recording(graduation_rulebase(), demand="on")
            assert on.assumptions(
                graduation_db(), query
            ) == off.assumptions(graduation_db(), query)

    def test_formatting(self):
        assert "not provable" in format_assumptions(None)
        assert "none" in format_assumptions(frozenset())
        rendered = format_assumptions(frozenset({atom("e", "c0")}))
        assert "e(c0)" in rendered


class TestExampleRulebaseSweep:
    """Acceptance criterion: every model atom of the example workloads
    round-trips why → verify_proof."""

    WORKLOADS = {
        "graduation": lambda: (graduation_rulebase(), graduation_db()),
        "parity": lambda: (parity_rulebase(), parity_db(["a", "b", "c"])),
        "hamiltonian": lambda: (
            hamiltonian_rulebase(),
            graph_db("abc", [("a", "b"), ("b", "c")]),
        ),
    }

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_every_model_atom_round_trips(self, workload):
        rulebase, db = self.WORKLOADS[workload]()
        engine = _recording(rulebase)
        for goal in sorted(engine.model(db), key=str):
            proof = engine.why(db, goal)
            assert proof is not None, str(goal)
            assert verify_proof(rulebase, proof), str(goal)


def _idb_candidates(rulebase, domain):
    """Ground instances of every IDB head shape over ``domain``."""
    from itertools import product

    shapes = {(rule.head.predicate, rule.head.arity) for rule in rulebase}
    for predicate, arity in sorted(shapes):
        for terms in product(sorted(domain, key=str), repeat=arity):
            yield Atom(predicate, tuple(terms))


class TestPropertyRoundTrip:
    """Randomized: every model atom replays to a verified proof; every
    absent IDB candidate gets a why-not witness.  Reuses the
    differential-testing generators."""

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("demand", ["off", "on"])
    def test_random_add_only(self, seed, demand):
        rng = random.Random(seed)
        rulebase = _random_rulebase(rng)
        db = _random_database(rng)
        engine = _recording(rulebase, demand=demand, max_databases=50_000)
        model = engine.model(db)
        for goal in model:
            proof = engine.why(db, goal)
            assert proof is not None, (str(rulebase), str(goal))
            assert verify_proof(rulebase, proof), (str(rulebase), str(goal))
        absent = [
            goal
            for goal in _idb_candidates(rulebase, engine.domain(db))
            if goal not in model
        ][:5]
        for goal in absent:
            report = engine.why_not(db, goal)
            assert report.kind == "absent", (str(rulebase), str(goal))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_with_negation(self, seed):
        rng = random.Random(seed + 1000)
        rulebase = _random_rulebase(rng, negation=True)
        db = _random_database(rng)
        try:
            engine = _recording(rulebase, max_databases=50_000)
            model = engine.model(db)
        except StratificationError:
            pytest.skip("random sample is not stratified")
        for goal in model:
            proof = engine.why(db, goal)
            assert proof is not None, (str(rulebase), str(goal))
            assert verify_proof(rulebase, proof), (str(rulebase), str(goal))
        absent = [
            goal
            for goal in _idb_candidates(rulebase, engine.domain(db))
            if goal not in model
        ][:5]
        for goal in absent:
            report = engine.why_not(db, goal)
            assert report.kind == "absent", (str(rulebase), str(goal))

    @pytest.mark.parametrize("seed", range(10))
    def test_assumptions_are_sufficient(self, seed):
        """Adding the reported assumptions to the database makes the
        goal derivable without any hypothetical help."""
        rng = random.Random(seed + 2000)
        rulebase = _random_rulebase(rng)
        db = _random_database(rng)
        engine = _recording(rulebase, max_databases=50_000)
        checked = 0
        for goal in sorted(engine.model(db), key=str):
            assumed = engine.assumptions(db, goal)
            assert assumed is not None, (str(rulebase), str(goal))
            if not assumed:
                continue
            enlarged = db.with_facts(*assumed)
            fresh = PerfectModelEngine(rulebase, max_databases=50_000)
            assert fresh.ask(enlarged, goal), (str(rulebase), str(goal))
            checked += 1
            if checked >= 3:
                break


class TestOverheadDiscipline:
    """``provenance=False`` must be a no-op: the null recorder, no
    ``prov.*`` counters, and identical rule-firing counts."""

    def test_null_recorder_by_default(self):
        engine = PerfectModelEngine(graduation_rulebase())
        assert engine.provenance is NULL_PROVENANCE
        assert not engine.provenance.enabled
        assert NULL_PROVENANCE.sink(Database()) is None

    def test_counter_parity_when_off(self):
        db = graduation_db()
        baseline = MetricsRegistry()
        plain = PerfectModelEngine(graduation_rulebase(), metrics=baseline)
        plain.model(db)
        flagged = MetricsRegistry()
        off = PerfectModelEngine(
            graduation_rulebase(), metrics=flagged, provenance=False
        )
        off.model(db)
        assert baseline.snapshot() == flagged.snapshot()
        assert not any(
            name.startswith("prov.") for name in flagged.snapshot()
        )

    def test_recording_does_not_change_the_model(self):
        for rulebase, db in (
            (graduation_rulebase(), graduation_db()),
            (parity_rulebase(), parity_db(["a", "b", "c"])),
            (hamiltonian_rulebase(), graph_db("ab", [("a", "b")])),
        ):
            plain = PerfectModelEngine(rulebase).model(db)
            recorded = _recording(rulebase).model(db)
            assert plain == recorded

    def test_edge_cap_drops_alternatives_not_atoms(self):
        recorder = ProvenanceRecorder()
        engine = PerfectModelEngine(
            graduation_rulebase(), provenance_recorder=recorder
        )
        engine.model(graduation_db())
        assert recorder.n_edges.value > 0
        assert recorder.n_atoms.value > 0


class TestSessionSurface:
    def test_session_why_with_topdown_primary(self):
        session = Session(graduation_rulebase(), "topdown")
        proof = session.why(graduation_db(), "within_one(tony)")
        assert proof is not None
        assert verify_proof(session.rulebase, proof)

    def test_session_why_not_and_assumptions(self):
        session = Session(graduation_rulebase(), "auto")
        report = session.why_not(graduation_db(), "grad(pat)")
        assert report.kind == "absent"
        assumed = session.assumptions(graduation_db(), "within_one(tony)")
        assert assumed == frozenset({atom("take", "tony", "cs250")})

    def test_recording_model_session_is_its_own_provenance_engine(self):
        session = Session(graduation_rulebase(), "model", provenance=True)
        assert session._provenance_engine() is session.engine

    def test_explainer_honors_budget(self):
        explainer = Explainer(
            graduation_rulebase(), budget=Budget(max_steps=1)
        )
        with pytest.raises(ResourceExhausted):
            explainer.explain(graduation_db(), "within_one(tony)")

    def test_why_budget_exhaustion(self):
        session = Session(graduation_rulebase(), "model", provenance=True)
        with pytest.raises(ResourceExhausted):
            session.why(
                graduation_db(),
                "within_one(tony)",
                budget=Budget(max_steps=1),
            )


class TestDemandRemap:
    """Demand-on provenance explains the *original* program: no
    ``magic__``/``sup__`` atoms in proofs, rules, or witnesses."""

    def _no_aux(self, proof):
        assert not proof.goal.predicate.startswith(("magic__", "sup__"))
        if proof.rule is not None:
            for premise in proof.rule.body:
                assert not premise.goal.predicate.startswith(
                    ("magic__", "sup__")
                )
        for step in proof.steps:
            if step.proof is not None:
                self._no_aux(step.proof)

    def test_demand_on_proof_mentions_only_original_predicates(self):
        rulebase = graduation_rulebase()
        engine = _recording(rulebase, demand="on")
        db = graduation_db()
        for query in ("within_one(tony)", "grad(sue)"):
            proof = engine.why(db, query)
            assert proof is not None
            self._no_aux(proof)
            assert verify_proof(rulebase, proof)

    def test_demand_auto_round_trip(self):
        rulebase = parity_rulebase()
        engine = _recording(rulebase, demand="auto")
        db = parity_db(["a", "b"])
        proof = engine.why(db, "even")
        assert proof is not None
        self._no_aux(proof)
        assert verify_proof(rulebase, proof)


class TestCliSurface:
    RULES = "examples/rulebases/graduation.dl"

    @pytest.fixture()
    def db_file(self, tmp_path):
        path = tmp_path / "univ.db"
        path.write_text(
            "student(tony).\n"
            "take(tony, his101).\ntake(tony, eng201).\n"
            "take(sue, his101).\ntake(sue, eng201).\ntake(sue, cs250).\n"
        )
        return str(path)

    def test_explain_why(self, db_file, capsys):
        from repro.cli import main

        code = main(
            ["explain", self.RULES, "grad(sue)", "-d", db_file, "--why"]
        )
        assert code == 0
        assert "grad(sue)" in capsys.readouterr().out

    def test_explain_why_not_provable(self, db_file, capsys):
        from repro.cli import main

        code = main(
            ["explain", self.RULES, "grad(pat)", "-d", db_file, "--why"]
        )
        assert code == 1
        assert "not provable" in capsys.readouterr().out

    def test_explain_why_not(self, db_file, capsys):
        from repro.cli import main

        code = main(
            ["explain", self.RULES, "grad(pat)", "-d", db_file, "--why-not"]
        )
        assert code == 0
        assert "not derivable" in capsys.readouterr().out

    def test_explain_why_not_on_derivable_exits_one(self, db_file, capsys):
        from repro.cli import main

        code = main(
            ["explain", self.RULES, "grad(sue)", "-d", db_file, "--why-not"]
        )
        assert code == 1

    def test_explain_assumptions(self, db_file, capsys):
        from repro.cli import main

        code = main(
            [
                "explain",
                self.RULES,
                "within_one(tony)",
                "-d",
                db_file,
                "--assumptions",
            ]
        )
        assert code == 0
        assert "take(tony, cs250)" in capsys.readouterr().out

    def test_explain_budget_exhaustion_exits_five(self, db_file, capsys):
        from repro.cli import main

        code = main(
            [
                "explain",
                self.RULES,
                "within_one(tony)",
                "-d",
                db_file,
                "--why",
                "--max-steps",
                "2",
            ]
        )
        assert code == 5

    def test_query_explain_yes(self, db_file, capsys):
        from repro.cli import main

        code = main(
            [
                "query",
                self.RULES,
                "grad(sue)",
                "-d",
                db_file,
                "--engine",
                "model",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("yes")
        assert "[fact in DB]" in out

    def test_query_explain_no(self, db_file, capsys):
        from repro.cli import main

        code = main(
            ["query", self.RULES, "grad(pat)", "-d", db_file, "--explain"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("no")
        assert "not derivable" in out

    def test_explain_modes_are_exclusive(self, db_file, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "explain",
                    self.RULES,
                    "grad(sue)",
                    "-d",
                    db_file,
                    "--why",
                    "--why-not",
                ]
            )


class TestReplSurface:
    def _repl(self):
        from repro.repl import Repl

        return Repl(graduation_rulebase(), graduation_db())

    def test_why_on_never_queried_atom(self):
        repl = self._repl()
        output = repl.feed(":why within_one(tony)")
        assert "within_one(tony)" in output
        assert "hypothetically" in output

    def test_whynot(self):
        repl = self._repl()
        assert "not derivable" in repl.feed(":whynot grad(pat)")

    def test_assumptions(self):
        repl = self._repl()
        assert "take(tony, cs250)" in repl.feed(":assumptions within_one(tony)")

    def test_usage_errors(self):
        repl = self._repl()
        assert "usage" in repl.feed(":why")
        assert "usage" in repl.feed(":whynot")
        assert "usage" in repl.feed(":assumptions")

    def test_provenance_session_invalidated_on_assert(self):
        repl = self._repl()
        assert "not derivable" in repl.feed(":whynot grad(pat)")
        for course in ("his101", "eng201", "cs250"):
            repl.feed(f"take(pat, {course}).")
        assert "derivable — ask why" in repl.feed(":whynot grad(pat)")
        assert "grad(pat)" in repl.feed(":why grad(pat)")

    def test_limits_apply_to_why(self):
        repl = self._repl()
        repl.feed(":limits steps=1")
        output = repl.feed(":why within_one(tony)")
        assert output.startswith("error:")
