"""Golden-file tests: exact diagnostic codes and spans, frozen.

Every rulebase shipped in :mod:`repro.library` and every ``.dl`` file
in ``examples/rulebases/`` has a golden file under ``tests/golden/``
listing, one per line, the ``line:col severity[code]`` of each
diagnostic ``check`` produces.  A change to the analyzer that alters
any code or span for the shipped programs must update these files
deliberately.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/test_golden_diagnostics.py --regenerate
"""

from pathlib import Path

import pytest

import repro.library as library
from repro.analysis.diagnostics import check, check_source

GOLDEN_DIR = Path(__file__).parent / "golden"
EXAMPLES_DIR = Path(__file__).parent.parent / "examples" / "rulebases"

LIBRARY_RULEBASES = {
    "library_graduation": lambda: library.graduation_rulebase(),
    "library_hamiltonian": lambda: library.hamiltonian_rulebase(),
    "library_hamiltonian_complement": (
        lambda: library.hamiltonian_complement_rulebase()
    ),
    "library_parity": lambda: library.parity_rulebase(),
    "library_coloring": lambda: library.coloring_rulebase(),
    "library_degree": lambda: library.degree_rulebase(),
    "library_example9": lambda: library.example9_rulebase(),
    "library_example10": lambda: library.example10_rulebase(),
    "library_addition_chain": lambda: library.addition_chain_rulebase(3),
    "library_order_iteration": lambda: library.order_iteration_rulebase(),
}


def summarize(diags):
    """``line:col severity[code]`` per diagnostic (file names stripped)."""
    lines = []
    for diag in diags:
        if diag.span is not None:
            loc = f"{diag.span.line}:{diag.span.column}"
        else:
            loc = "-"
        lines.append(f"{loc} {diag.severity}[{diag.code}]")
    return lines


def golden_lines(name):
    path = GOLDEN_DIR / f"{name}.txt"
    assert path.exists(), f"golden file missing: {path}"
    return path.read_text().splitlines()


def example_files():
    return sorted(EXAMPLES_DIR.glob("*.dl"))


class TestLibraryGoldens:
    @pytest.mark.parametrize("name", sorted(LIBRARY_RULEBASES))
    def test_codes_and_spans_match(self, name):
        diags = check(LIBRARY_RULEBASES[name]())
        assert summarize(diags) == golden_lines(name)


def demand_queries(rulebase):
    """A canonical query battery for the demand analysis goldens: one
    all-free pattern per defined predicate (sorted), plus a negated
    variant of the first — deterministic, so spans and codes freeze."""
    names = sorted(rulebase.defined_predicates())
    queries = []
    for predicate in names:
        arity = rulebase.arity(predicate) or 0
        arguments = ", ".join(f"Q{index}" for index in range(arity))
        queries.append(f"{predicate}({arguments})" if arity else predicate)
    if queries:
        queries.append("~" + queries[0])
    return queries


# ``demand-unsafe-rule`` needs a free (unguarded) negative cycle below
# a restricted goal — such a program necessarily carries a
# ``negation-cycle`` error, so it cannot ship as an example; it is
# frozen here from an inline source instead.
UNSAFE_RULE_SOURCE = """\
answer(X) :- win(X).
win(X) :- move(X, Y), ~win(Y).
move(a, b).
"""


class TestDemandGoldens:
    """The ``demand-*`` diagnostic codes across the shipped examples,
    frozen per query battery (docs/DEMAND.md)."""

    def test_every_example_has_a_demand_golden(self):
        for path in example_files():
            assert (GOLDEN_DIR / f"demand_{path.stem}.txt").exists()

    def test_battery_covers_all_three_codes(self):
        seen = set()
        for path in example_files():
            for line in golden_lines(f"demand_{path.stem}"):
                seen.add(line.split("[")[-1].rstrip("]"))
        for line in golden_lines("demand_unsafe_rule"):
            seen.add(line.split("[")[-1].rstrip("]"))
        assert {
            "demand-unsafe-rule",
            "demand-unbound-negation",
            "demand-blocked-hypothesis",
        } <= seen

    def test_unsafe_rule_codes_match(self):
        _, diags = check_source(
            UNSAFE_RULE_SOURCE, "unsafe_rule.dl", queries=["answer(Q0)"]
        )
        assert summarize(diags) == golden_lines("demand_unsafe_rule")

    @pytest.mark.parametrize("path", example_files(), ids=lambda p: p.stem)
    def test_codes_and_spans_match(self, path):
        rulebase, diags = check_source(path.read_text(), path.name)
        assert rulebase is not None
        _, with_queries = check_source(
            path.read_text(), path.name, queries=demand_queries(rulebase)
        )
        assert summarize(with_queries) == golden_lines(f"demand_{path.stem}")

    def test_sarif_catalogues_demand_codes(self):
        import json

        from repro.analysis.diagnostics import to_sarif

        path = EXAMPLES_DIR / "hamiltonian.dl"
        rulebase, _ = check_source(path.read_text(), path.name)
        _, diags = check_source(
            path.read_text(), path.name, queries=demand_queries(rulebase)
        )
        sarif = json.loads(to_sarif(diags))
        run = sarif["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {
            "demand-unsafe-rule",
            "demand-unbound-negation",
            "demand-blocked-hypothesis",
        } <= rule_ids
        result_ids = {result["ruleId"] for result in run["results"]}
        assert "demand-unbound-negation" in result_ids


class TestExampleGoldens:
    def test_every_example_has_a_golden(self):
        assert example_files(), "no example rulebases found"
        for path in example_files():
            assert (GOLDEN_DIR / f"examples_{path.stem}.txt").exists()

    @pytest.mark.parametrize(
        "path", example_files(), ids=lambda p: p.stem
    )
    def test_codes_and_spans_match(self, path):
        rulebase, diags = check_source(path.read_text(), path.name)
        assert rulebase is not None, f"{path} failed to parse"
        assert summarize(diags) == golden_lines(f"examples_{path.stem}")

    @pytest.mark.parametrize(
        "path", example_files(), ids=lambda p: p.stem
    )
    def test_no_example_has_errors(self, path):
        _, diags = check_source(path.read_text(), path.name)
        assert all(d.severity != "error" for d in diags)


def _regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, build in LIBRARY_RULEBASES.items():
        lines = summarize(check(build()))
        (GOLDEN_DIR / f"{name}.txt").write_text(
            "\n".join(lines) + "\n" if lines else ""
        )
    for path in example_files():
        rulebase, diags = check_source(path.read_text(), path.name)
        lines = summarize(diags)
        (GOLDEN_DIR / f"examples_{path.stem}.txt").write_text(
            "\n".join(lines) + "\n" if lines else ""
        )
        _, with_queries = check_source(
            path.read_text(), path.name, queries=demand_queries(rulebase)
        )
        lines = summarize(with_queries)
        (GOLDEN_DIR / f"demand_{path.stem}.txt").write_text(
            "\n".join(lines) + "\n" if lines else ""
        )
    _, diags = check_source(
        UNSAFE_RULE_SOURCE, "unsafe_rule.dl", queries=["answer(Q0)"]
    )
    lines = summarize(diags)
    (GOLDEN_DIR / "demand_unsafe_rule.txt").write_text(
        "\n".join(lines) + "\n" if lines else ""
    )
    print(f"regenerated goldens in {GOLDEN_DIR}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
