"""Tests for trace exporters (repro.obs.export)."""

import itertools
import json

import pytest

from repro.core.spans import Span
from repro.obs.export import (
    render_tree,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture
def tracer():
    ticker = itertools.count(0, 1000)
    tracer = Tracer(clock=lambda: next(ticker))
    src = Span(3, 1, source="rules.dl")
    with tracer.span("goal", "p(a)", args={"stratum": 1}):
        with tracer.span("rule", "p", src=src):
            tracer.event("plan", "q r", args={"order": [{"predicate": "q"}]})
    tracer.finish()
    return tracer


class TestRenderTree:
    def test_basic_shape(self, tracer):
        text = render_tree(tracer.root)
        lines = text.splitlines()
        assert lines[0].startswith("trace session")
        assert "goal p(a)" in lines[1] and "stratum=1" in lines[1]
        assert "[rules.dl:3:1]" in lines[2]
        assert lines[3].lstrip().startswith("@plan q r")

    def test_timings_toggle(self, tracer):
        assert "us" in render_tree(tracer.root)
        assert "us" not in render_tree(tracer.root, timings=False)

    def test_max_depth(self, tracer):
        text = render_tree(tracer.root, max_depth=1)
        assert "goal p(a)" in text and "@plan" not in text

    def test_wide_level_elided(self):
        tracer = Tracer(clock=lambda: 0)
        with tracer.span("stratum", "0"):
            for index in range(30):
                with tracer.span("rule", f"r{index}"):
                    pass
        text = render_tree(tracer.finish(), max_children=24)
        assert "... (+6 more)" in text


class TestJsonl:
    def test_structure(self, tracer):
        registry = MetricsRegistry()
        registry.counter("prove.sigma_goals").inc(2)
        lines = [
            json.loads(line)
            for line in to_jsonl(tracer.root, metrics=registry).splitlines()
        ]
        assert [record["type"] for record in lines] == [
            "span",
            "span",
            "span",
            "event",
            "metrics",
        ]
        goal = lines[1]
        assert goal["kind"] == "goal" and goal["depth"] == 1
        assert lines[2]["src"] == "rules.dl:3:1"
        assert lines[-1]["values"] == {"prove.sigma_goals": 2}

    def test_redact_timings(self, tracer):
        lines = [
            json.loads(line)
            for line in to_jsonl(tracer.root, redact_timings=True).splitlines()
        ]
        for record in lines:
            for key in ("start_us", "dur_us", "ts_us"):
                if key in record:
                    assert record[key] == 0

    def test_unredacted_timings_nonzero(self, tracer):
        lines = [
            json.loads(line) for line in to_jsonl(tracer.root).splitlines()
        ]
        assert any(record.get("dur_us") for record in lines)


class TestChromeTrace:
    def test_valid_payload(self, tracer):
        payload = to_chrome_trace(tracer.root)
        assert validate_chrome_trace(payload) == []
        phases = [event["ph"] for event in payload["traceEvents"]]
        assert phases == ["X", "X", "X", "i"]
        assert payload["otherData"]["generator"] == "hypodatalog"

    def test_names_and_src(self, tracer):
        events = to_chrome_trace(tracer.root)["traceEvents"]
        assert events[1]["name"] == "goal:p(a)"
        assert events[2]["args"]["src"] == "rules.dl:3:1"

    def test_metrics_ride_along(self, tracer):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        payload = to_chrome_trace(tracer.root, metrics=registry)
        assert payload["otherData"]["metrics"] == {"c": 1}

    def test_write_roundtrip(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer.root)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_accepts_tracer_directly(self, tracer):
        assert validate_chrome_trace(to_chrome_trace(tracer)) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_rejects_bad_phase(self):
        payload = {"traceEvents": [{"ph": "B", "name": "x"}]}
        problems = validate_chrome_trace(payload)
        assert any("ph must be" in problem for problem in problems)

    def test_rejects_missing_keys(self):
        payload = {"traceEvents": [{"ph": "X", "name": "x"}]}
        problems = validate_chrome_trace(payload)
        assert any("missing required key" in problem for problem in problems)

    def test_rejects_bad_types(self):
        event = {
            "ph": "X",
            "name": 7,
            "cat": "goal",
            "ts": "soon",
            "dur": 1,
            "pid": 1.5,
            "tid": 1,
            "args": [],
        }
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert len(problems) >= 4
