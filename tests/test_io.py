"""Unit tests for JSON serialization."""

import json

import pytest

from repro.core.database import Database
from repro.core.errors import ValidationError
from repro.core.parser import parse_program
from repro.io.serialize import (
    database_from_dict,
    database_to_dict,
    dumps_database,
    dumps_rulebase,
    loads_database,
    loads_rulebase,
    rulebase_from_dict,
    rulebase_to_dict,
)
from repro.library import example9_rulebase, graduation_db, hamiltonian_rulebase
from repro.machines.encode import cascade_database, cascade_rulebase
from repro.machines.library import contains_one_cascade


class TestRulebaseRoundTrip:
    CASES = [
        "p(a).",
        "grad(S) :- take(S, his101), take(S, eng201).",
        "even :- ~select(X).",
        "p :- q[add: r, s(X)].",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_single_rules(self, text):
        rb = parse_program(text)
        assert loads_rulebase(dumps_rulebase(rb)) == rb

    def test_paper_rulebases(self):
        for rb in (example9_rulebase(), hamiltonian_rulebase()):
            assert rulebase_from_dict(rulebase_to_dict(rb)) == rb

    def test_machine_encoding_with_integers(self):
        rb = cascade_rulebase(contains_one_cascade())
        assert loads_rulebase(dumps_rulebase(rb)) == rb

    def test_rejects_unknown_format(self):
        with pytest.raises(ValidationError):
            rulebase_from_dict({"format": 99, "rules": []})

    def test_json_is_plain_data(self):
        payload = json.loads(dumps_rulebase(example9_rulebase()))
        assert isinstance(payload["rules"], list)


class TestDatabaseRoundTrip:
    def test_university_db(self):
        db = graduation_db()
        assert loads_database(dumps_database(db)) == db

    def test_integer_constants_survive(self):
        db = cascade_database(contains_one_cascade(), ["1"], 4)
        restored = loads_database(dumps_database(db))
        assert restored == db
        # Integers stayed integers (0 != "0").
        assert any(
            isinstance(constant.value, int) for constant in restored.constants()
        )

    def test_empty_database(self):
        assert loads_database(dumps_database(Database())) == Database()

    def test_rejects_unknown_format(self):
        with pytest.raises(ValidationError):
            database_from_dict({"format": 0, "facts": []})

    def test_facts_sorted_for_stable_diffs(self):
        db = graduation_db()
        first = dumps_database(db)
        second = dumps_database(loads_database(first))
        assert first == second
