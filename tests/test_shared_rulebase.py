"""Isolation and sharing guarantees for the multi-session server core.

The server's scalability story (docs/SERVER.md) rests on two claims
about :class:`~repro.server.sessions.SharedRulebase`:

1. **Isolation** — sessions over one shared rulebase never observe
   each other's asserted/retracted facts or one-shot ``assume``
   hypotheses, no matter how they interleave (a property test drives
   disjoint assumption sets through both sessions).
2. **Structural sharing** — a session's effective database shares the
   untouched base relations *by identity* (copy-on-write), so a
   thousand sessions cost O(their deltas), and the shared structures
   are safe to read from concurrent evaluator threads because they
   are immutable (``Database`` relation frozensets) or private per
   engine (each session's ``SymbolTable``/``ColumnStore``).
"""

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.parser import parse_atom, parse_database, parse_program
from repro.server.sessions import ClientSession, SharedRulebase

RULES = "grad(S) :- take(S, m1), take(S, m2)."
FACTS = "take(ann, m1). take(ben, m1). take(ben, m2)."

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)


def make_shared():
    return SharedRulebase(parse_program(RULES), parse_database(FACTS))


def take_facts(student):
    return [f"take({student}, m1)", f"take({student}, m2)"]


# ----------------------------------------------------------------------
# Isolation
# ----------------------------------------------------------------------


class TestIsolationProperty:
    @SETTINGS
    @given(st.sets(names, max_size=5), st.sets(names, max_size=5))
    def test_disjoint_assertions_never_leak(self, left, right):
        left, right = left - right, right - left  # force disjoint
        shared = make_shared()
        alpha = ClientSession(shared, "alpha")
        beta = ClientSession(shared, "beta")
        for student in left:
            alpha.assert_facts(take_facts(student))
        for student in right:
            beta.assert_facts(take_facts(student))
        base = {("ben",)}
        assert alpha.answers("grad(S)") == base | {(s,) for s in left}
        assert beta.answers("grad(S)") == base | {(s,) for s in right}
        # The shared base is untouched by either overlay.
        assert len(shared.base_db) == 3

    @SETTINGS
    @given(st.sets(names, min_size=1, max_size=4))
    def test_disjoint_assume_hypotheses_never_leak(self, students):
        # The same hypothetical [add: ...] premises as one-shot assume
        # lists: visible inside the request, gone after it, and never
        # visible from the sibling session.
        shared = make_shared()
        alpha = ClientSession(shared, "alpha")
        beta = ClientSession(shared, "beta")
        assumed = [fact for s in students for fact in take_facts(s)]
        expected = {("ben",)} | {(s,) for s in students}
        assert alpha.answers("grad(S)", assume=assumed) == expected
        # Not persisted in alpha, never seen by beta.
        assert alpha.answers("grad(S)") == {("ben",)}
        assert beta.answers("grad(S)") == {("ben",)}

    def test_retraction_is_private(self):
        shared = make_shared()
        alpha = ClientSession(shared, "alpha")
        beta = ClientSession(shared, "beta")
        alpha.retract_facts(["take(ben, m2)"])
        assert alpha.answers("grad(S)") == set()
        assert beta.answers("grad(S)") == {("ben",)}
        assert parse_atom("take(ben, m2)") in shared.base_db

    def test_assert_after_retract_restores_the_fact(self):
        shared = make_shared()
        session = ClientSession(shared)
        session.retract_facts(["take(ben, m2)"])
        assert not session.ask("grad(ben)")
        session.assert_facts(["take(ben, m2)"])
        assert session.ask("grad(ben)")
        assert session.overlay() == {
            "asserted": ["take(ben, m2)"],
            "retracted": [],
        }

    def test_inline_hypothetical_premises_stay_per_query(self):
        shared = make_shared()
        alpha = ClientSession(shared, "alpha")
        beta = ClientSession(shared, "beta")
        assert alpha.ask("grad(ann)[add: take(ann, m2)]")
        assert not alpha.ask("grad(ann)")
        assert not beta.ask("grad(ann)")


# ----------------------------------------------------------------------
# Copy-on-write structural sharing
# ----------------------------------------------------------------------


class TestStructuralSharing:
    def test_session_db_shares_untouched_relations_by_identity(self):
        shared = make_shared()
        session = ClientSession(shared)
        session.assert_facts(["likes(ann, logic)"])
        view = session.db
        assert view is not shared.base_db
        # The untouched relation is the same frozenset object, not a
        # copy: overlays cost O(delta), never O(|base|).
        assert view._index["take"] is shared.base_db._index["take"]

    def test_clean_session_view_is_the_base_itself(self):
        shared = make_shared()
        session = ClientSession(shared)
        assert session.db is shared.base_db

    def test_redundant_overlay_collapses_to_base(self):
        shared = make_shared()
        session = ClientSession(shared)
        # Asserting a fact the base already holds adds nothing.
        session.assert_facts(["take(ann, m1)"])
        assert session.db is shared.base_db

    def test_with_facts_returns_self_when_nothing_new(self):
        db = parse_database(FACTS)
        assert db.with_facts(parse_atom("take(ann, m1)")) is db
        assert db.without_facts(parse_atom("take(zz, m9)")) is db

    def test_many_sessions_share_one_base(self):
        shared = make_shared()
        sessions = [ClientSession(shared) for _ in range(50)]
        for position, session in enumerate(sessions):
            session.assert_facts([f"take(s{position}, m1)"])
        base_rows = shared.base_db._index["take"]
        assert all(
            session.db._index["grad"] is shared.base_db._index["grad"]
            for session in sessions
            if "grad" in shared.base_db._index
        )
        # Every overlay extends the same shared 'take' rows.
        assert all(
            base_rows <= session.db._index["take"] for session in sessions
        )

    def test_private_engine_state_per_session(self):
        # Interning tables and column stores live inside each session's
        # engine, never in the shared rulebase — so one session's hot
        # loops cannot corrupt another's decode tables.
        shared = make_shared()
        alpha = ClientSession(shared, "alpha")
        beta = ClientSession(shared, "beta")
        assert alpha._session is not beta._session
        for mine, theirs in [(alpha, beta)]:
            a_engine, b_engine = mine._session.engine, theirs._session.engine
            a_kern = getattr(a_engine, "kernels", None) or getattr(
                a_engine, "_kernels", None
            )
            b_kern = getattr(b_engine, "kernels", None) or getattr(
                b_engine, "_kernels", None
            )
            if a_kern is not None and b_kern is not None:
                assert a_kern is not b_kern


# ----------------------------------------------------------------------
# Concurrent readers over the shared structures
# ----------------------------------------------------------------------


class TestConcurrentSharing:
    def test_parallel_sessions_stay_correct_and_isolated(self):
        """Hammer one shared rulebase from worker threads, each owning
        a private session — the server's exact execution shape."""
        shared = make_shared()

        def worker(position):
            session = ClientSession(shared, f"w{position}")
            student = f"s{position}"
            session.assert_facts(take_facts(student))
            for _ in range(10):
                rows = session.answers("grad(S)")
                if rows != {("ben",), (student,)}:
                    return f"w{position} saw {rows!r}"
                if session.ask(f"grad(x{position})"):
                    return f"w{position} proved a ghost"
            return None

        with ThreadPoolExecutor(max_workers=8) as pool:
            problems = [p for p in pool.map(worker, range(16)) if p]
        assert problems == []
        assert len(shared.base_db) == 3

    def test_parallel_what_ifs_over_one_session_db_snapshot(self):
        """Concurrent one-shot ``assume`` requests layer over the same
        immutable database object without interference."""
        shared = make_shared()
        sessions = [ClientSession(shared, f"c{i}") for i in range(8)]

        def worker(position):
            session = sessions[position]
            assumed = take_facts(f"h{position}")
            rows = session.answers("grad(S)", assume=assumed)
            if rows != {("ben",), (f"h{position}",)}:
                return f"c{position} saw {rows!r}"
            if session.db is not shared.base_db:
                return f"c{position} mutated its view"
            return None

        with ThreadPoolExecutor(max_workers=8) as pool:
            problems = [p for p in pool.map(worker, range(8)) if p]
        assert problems == []
