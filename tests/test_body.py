"""Unit tests for the shared rule-body machinery."""

from repro.core.ast import Hypothetical, Negated, Positive
from repro.core.terms import Constant, Variable, atom
from repro.engine.body import ordered_premises, satisfy_body
from repro.engine.interpretation import Interpretation


class TestOrdering:
    def test_positives_then_hypotheticals_then_negations(self):
        body = (
            Negated(atom("n1")),
            Hypothetical(atom("h1"), (atom("x"),)),
            Positive(atom("p1")),
            Negated(atom("n2")),
            Positive(atom("p2")),
        )
        ordered = ordered_premises(body)
        kinds = [type(premise).__name__ for premise in ordered]
        assert kinds == ["Positive", "Positive", "Hypothetical", "Negated", "Negated"]

    def test_stable_within_category(self):
        body = (Positive(atom("p1")), Positive(atom("p2")))
        assert [str(p) for p in ordered_premises(body)] == ["p1", "p2"]


class TestGreedyJoinOrder:
    def test_most_bound_first(self):
        from repro.engine.body import greedy_positive_order
        from repro.core.terms import Variable

        body = [
            Positive(atom("wide", "Y")),        # 1 unbound
            Positive(atom("link", "X", "Y")),   # 2 unbound
            Positive(atom("anchor", "X")),      # 1 unbound
        ]
        ordered = greedy_positive_order(body, ())
        # wide(Y) and anchor(X) tie at 1 unbound; textual order picks
        # wide(Y), after which link(X, Y) ties with anchor(X) at one
        # unbound each and textual order decides again.  The cross
        # product (link before anything binds) never happens.
        assert [str(p) for p in ordered] == ["wide(Y)", "link(X, Y)", "anchor(X)"]

    def test_cross_product_deferred(self):
        from repro.engine.body import greedy_positive_order

        body = [
            Positive(atom("link", "X", "Y")),   # 2 unbound: deferred
            Positive(atom("anchor", "X")),
        ]
        ordered = greedy_positive_order(body, ())
        assert [str(p) for p in ordered] == ["anchor(X)", "link(X, Y)"]

    def test_seed_binding_changes_plan(self):
        from repro.engine.body import greedy_positive_order
        from repro.core.terms import Variable

        body = [
            Positive(atom("wide", "Y")),
            Positive(atom("link", "X", "Y")),
        ]
        ordered = greedy_positive_order(body, [Variable("X"), Variable("Y")])
        # Everything bound: textual order preserved.
        assert [str(p) for p in ordered] == ["wide(Y)", "link(X, Y)"]

    def test_same_answers_either_way(self):
        from repro.core.parser import parse_program
        from repro.core.database import Database
        from repro.engine.topdown import TopDownEngine

        rules = parse_program("hit(X) :- wide(Y), anchor(X), link(X, Y).")
        db = Database.from_relations(
            {
                "wide": [f"w{index}" for index in range(6)],
                "anchor": ["a", "b"],
                "link": [("a", "w0")],
            }
        )
        greedy = TopDownEngine(rules, optimize_joins=True)
        textual = TopDownEngine(rules, optimize_joins=False)
        assert greedy.answers(db, "hit(X)") == textual.answers(db, "hit(X)") == {("a",)}


class TestSatisfyBody:
    def _callbacks(self, interp):
        return {
            "positive": lambda pattern, binding: interp.matches(pattern, binding),
            "hypothetical": lambda premise, binding: iter(()),
            "negated": lambda pattern, binding: not interp.has_match(
                pattern, binding
            ),
        }

    def test_join_two_positives(self):
        interp = Interpretation(
            [atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "d")]
        )
        body = (Positive(atom("e", "X", "Y")), Positive(atom("e", "Y", "Z")))
        results = list(satisfy_body(body, **self._callbacks(interp)))
        chains = {
            (binding[Variable("X")].value, binding[Variable("Z")].value)
            for binding in results
        }
        assert chains == {("a", "c"), ("b", "d")}

    def test_negation_sees_bindings_from_positives(self):
        interp = Interpretation([atom("p", "a"), atom("p", "b"), atom("q", "a")])
        body = (Positive(atom("p", "X")), Negated(atom("q", "X")))
        results = list(satisfy_body(body, **self._callbacks(interp)))
        assert {binding[Variable("X")].value for binding in results} == {"b"}

    def test_negation_local_variable_is_not_exists(self):
        interp = Interpretation([atom("p", "a"), atom("q", "z")])
        body = (Positive(atom("p", "X")), Negated(atom("q", "Y")))
        # q has a tuple, so ~q(Y) fails outright regardless of X.
        assert list(satisfy_body(body, **self._callbacks(interp))) == []

    def test_empty_body_yields_once(self):
        interp = Interpretation()
        results = list(satisfy_body((), **self._callbacks(interp)))
        assert results == [{}]

    def test_initial_binding_respected(self):
        interp = Interpretation([atom("p", "a"), atom("p", "b")])
        body = (Positive(atom("p", "X")),)
        results = list(
            satisfy_body(
                body,
                binding={Variable("X"): Constant("b")},
                **self._callbacks(interp),
            )
        )
        assert len(results) == 1
        assert results[0][Variable("X")] == Constant("b")

    def test_hypothetical_callback_drives_bindings(self):
        interp = Interpretation([atom("p", "a")])
        calls = []

        def hypothetical(premise, binding):
            calls.append(premise)
            extended = dict(binding)
            extended[Variable("H")] = Constant("h")
            yield extended

        body = (
            Positive(atom("p", "X")),
            Hypothetical(atom("goal", "H"), (atom("mark", "H"),)),
        )
        results = list(
            satisfy_body(
                body,
                positive=lambda pattern, binding: interp.matches(pattern, binding),
                hypothetical=hypothetical,
                negated=lambda pattern, binding: True,
            )
        )
        assert len(results) == 1
        assert results[0][Variable("H")] == Constant("h")
        assert len(calls) == 1
