"""Unit tests for the benchmark workload generators."""

from repro.analysis.stratify import linear_stratification
from repro.bench.workloads import (
    chain_edges_db,
    cycle_graph,
    path_graph,
    random_database,
    random_graph,
    random_layered_rulebase,
    transitive_closure_rules,
)


class TestGraphs:
    def test_random_graph_deterministic(self):
        assert random_graph(6, 0.4, seed=7) == random_graph(6, 0.4, seed=7)

    def test_random_graph_seed_matters(self):
        assert random_graph(8, 0.5, seed=1) != random_graph(8, 0.5, seed=2)

    def test_random_graph_no_self_loops(self):
        _, edges = random_graph(6, 1.0, seed=0)
        assert all(source != target for source, target in edges)
        assert len(edges) == 30  # complete directed graph minus loops

    def test_path_graph(self):
        nodes, edges = path_graph(4)
        assert len(nodes) == 4
        assert edges == [("v0", "v1"), ("v1", "v2"), ("v2", "v3")]

    def test_cycle_graph(self):
        nodes, edges = cycle_graph(3)
        assert ("v2", "v0") in edges
        assert len(edges) == 3

    def test_single_node_cycle(self):
        _, edges = cycle_graph(1)
        assert edges == []


class TestDatabases:
    def test_chain_edges(self):
        db = chain_edges_db(4)
        assert db.rows("edge") == {("v0", "v1"), ("v1", "v2"), ("v2", "v3")}

    def test_random_database_counts(self):
        db = random_database([("p", 2), ("q", 1)], 10, 5, seed=3)
        assert len(db.rows("p")) == 5
        assert len(db.rows("q")) == 5

    def test_random_database_deterministic(self):
        first = random_database([("p", 2)], 8, 6, seed=9)
        second = random_database([("p", 2)], 8, 6, seed=9)
        assert first == second


class TestLayeredRulebases:
    def test_requested_strata(self):
        for strata in (1, 2, 3, 5):
            rb = random_layered_rulebase(20, strata, seed=11)
            assert linear_stratification(rb).k == strata

    def test_deterministic(self):
        assert (
            random_layered_rulebase(12, 3, seed=4).rules
            == random_layered_rulebase(12, 3, seed=4).rules
        )

    def test_scales_with_predicates(self):
        small = random_layered_rulebase(10, 2, seed=1)
        large = random_layered_rulebase(40, 2, seed=1)
        assert len(large) > len(small)

    def test_needs_enough_predicates(self):
        import pytest

        with pytest.raises(ValueError):
            random_layered_rulebase(2, 5, seed=0)


class TestTransitiveClosure:
    def test_rules_shape(self):
        rb = transitive_closure_rules()
        assert len(rb) == 2
        assert rb.defined_predicates() == {"path"}
