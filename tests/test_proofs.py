"""Tests for proof objects: explain -> verify round trips."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_program, parse_rule
from repro.core.terms import atom
from repro.engine.proofs import Explainer, Proof, format_proof, verify_proof
from repro.library import (
    addition_chain_rulebase,
    graduation_db,
    graduation_rulebase,
    graph_db,
    hamiltonian_rulebase,
    parity_db,
    parity_rulebase,
)


class TestExplain:
    def test_fact_proof(self):
        rb = parse_program("p :- q.")
        explainer = Explainer(rb)
        db = Database([atom("q")])
        proof = explainer.explain(db, "q")
        assert proof is not None and proof.is_fact
        assert verify_proof(rb, proof)

    def test_rule_application(self):
        rb = parse_program("p :- q.")
        explainer = Explainer(rb)
        db = Database([atom("q")])
        proof = explainer.explain(db, "p")
        assert proof is not None and not proof.is_fact
        assert proof.rule == parse_rule("p :- q.")
        assert verify_proof(rb, proof)

    def test_unprovable_goal(self):
        rb = parse_program("p :- q.")
        assert Explainer(rb).explain(Database(), "p") is None

    def test_hypothetical_step_changes_database(self):
        rb = parse_program("outer :- inner[add: mark]. inner :- mark.")
        explainer = Explainer(rb)
        proof = explainer.explain(Database(), "outer")
        assert proof is not None
        inner_step = proof.steps[0]
        assert atom("mark") in inner_step.proof.db
        assert verify_proof(rb, proof)

    def test_hypothetical_query(self):
        rb = parse_program("a :- b.")
        explainer = Explainer(rb)
        proof = explainer.explain(Database(), "a[add: b]")
        assert proof is not None
        assert proof.goal == atom("a")
        assert atom("b") in proof.db
        assert verify_proof(rb, proof)

    def test_negated_query_rejected(self):
        rb = parse_program("p :- q.")
        with pytest.raises(EvaluationError):
            Explainer(rb).explain(Database(), "~p")

    def test_negation_step_recorded_without_subproof(self):
        rb = parse_program("safe :- ~danger. danger :- alarm.")
        explainer = Explainer(rb)
        proof = explainer.explain(Database(), "safe")
        assert proof is not None
        assert proof.steps[0].proof is None
        assert verify_proof(rb, proof)

    def test_existential_query_variables(self):
        rb = graduation_rulebase()
        explainer = Explainer(rb)
        proof = explainer.explain(graduation_db(), "within_one(S)")
        assert proof is not None
        assert verify_proof(rb, proof)

    def test_cycle_in_rules_explained_via_base(self):
        rb = parse_program("p :- q. q :- p. p :- base.")
        explainer = Explainer(rb)
        proof = explainer.explain(Database([atom("base")]), "q")
        assert proof is not None
        assert verify_proof(rb, proof)
        # q's proof must bottom out at the base fact, not loop.
        assert proof.depth() <= 4


class TestVerify:
    def test_rejects_fact_not_in_db(self):
        rb = parse_program("p :- q.")
        fake = Proof(atom("q"), Database())
        assert not verify_proof(rb, fake)

    def test_rejects_foreign_rule(self):
        rb = parse_program("p :- q.")
        foreign = parse_rule("p :- r.")
        fake = Proof(
            atom("p"),
            Database([atom("r")]),
            foreign,
            (),
        )
        assert not verify_proof(rb, fake)

    def test_rejects_mismatched_head(self):
        rb = parse_program("p(X) :- q(X).")
        rule = rb.rules[0]
        # Goal p(a) but child proves q(b).
        from repro.core.ast import Positive
        from repro.engine.proofs import PremiseStep

        db = Database([atom("q", "b")])
        bad = Proof(
            atom("p", "a"),
            db,
            rule,
            (PremiseStep(Positive(atom("q", "b")), Proof(atom("q", "b"), db)),),
        )
        assert not verify_proof(rb, bad)

    def test_rejects_wrong_database_on_hypothetical_step(self):
        rb = parse_program("outer :- inner[add: mark]. inner :- mark.")
        explainer = Explainer(rb)
        good = explainer.explain(Database(), "outer")
        assert verify_proof(rb, good)
        # Tamper: claim the subproof ran at the original database.
        from dataclasses import replace
        from repro.engine.proofs import PremiseStep

        step = good.steps[0]
        tampered_sub = replace(step.proof, db=Database())
        tampered = replace(
            good, steps=(PremiseStep(step.premise, tampered_sub),)
        )
        assert not verify_proof(rb, tampered)

    def test_rejects_false_negation_claim(self):
        rb = parse_program("safe :- ~danger. danger :- alarm.")
        explainer = Explainer(rb)
        good = explainer.explain(Database(), "safe")
        # The same proof at a database where danger holds must fail.
        from dataclasses import replace

        alarmed = Database([atom("alarm")])
        tampered = replace(good, db=alarmed)
        assert not verify_proof(rb, tampered)


class TestRoundTripsOnPaperExamples:
    def test_chain(self):
        rb = addition_chain_rulebase(4)
        explainer = Explainer(rb)
        proof = explainer.explain(Database(), "a1")
        assert proof is not None
        assert verify_proof(rb, proof)
        # The proof threads through all n + 1 chain rules.
        assert proof.depth() >= 5

    def test_parity(self):
        rb = parity_rulebase()
        explainer = Explainer(rb)
        proof = explainer.explain(parity_db(["x", "y"]), "even")
        assert proof is not None
        assert verify_proof(rb, proof)

    def test_hamiltonian(self):
        rb = hamiltonian_rulebase()
        explainer = Explainer(rb)
        db = graph_db(["a", "b", "c"], [("a", "b"), ("b", "c")])
        proof = explainer.explain(db, "yes")
        assert proof is not None
        assert verify_proof(rb, proof)
        # The derivation visits every node: at least 3 pnode additions.
        rendered = format_proof(proof)
        assert rendered.count("pnode") >= 3


class TestFormatting:
    def test_format_mentions_rules_and_facts(self):
        rb = parse_program("p :- q.")
        proof = Explainer(rb).explain(Database([atom("q")]), "p")
        text = format_proof(proof)
        assert "[by rule: p :- q.]" in text
        assert "[fact in DB]" in text

    def test_format_shows_hypothetical_change(self):
        rb = parse_program("outer :- inner[add: mark]. inner :- mark.")
        proof = Explainer(rb).explain(Database(), "outer")
        text = format_proof(proof)
        assert "+{mark}" in text

    def test_format_shows_failure_steps(self):
        rb = parse_program("safe :- ~danger.")
        proof = Explainer(rb).explain(Database(), "safe")
        assert "[by failure]" in format_proof(proof)
