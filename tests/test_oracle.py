"""Unit tests for oracle-machine cascades (direct simulation)."""

import pytest

from repro.core.errors import MachineError
from repro.machines.library import (
    contains_one,
    contains_one_cascade,
    copy_and_query,
    no_ones_cascade,
    suggested_time_bound,
)
from repro.machines.oracle import Cascade
from repro.machines.turing import BLANK, Machine, Step


class TestValidation:
    def test_bottom_must_not_use_oracle(self):
        with pytest.raises(MachineError):
            Cascade((copy_and_query(True, "m"),))

    def test_upper_machines_must_use_oracle(self):
        with pytest.raises(MachineError):
            Cascade((contains_one(), contains_one()))

    def test_empty_cascade_rejected(self):
        with pytest.raises(MachineError):
            Cascade(())

    def test_level_indexing(self):
        cascade = contains_one_cascade()
        assert cascade.k == 2
        assert cascade.machine_at_level(2).uses_oracle
        assert not cascade.machine_at_level(1).uses_oracle
        with pytest.raises(MachineError):
            cascade.machine_at_level(3)


class TestSingleLevel:
    def test_k1_cascade_equals_run_machine(self):
        from repro.machines.turing import run_machine

        cascade = Cascade((contains_one(),))
        for text in ["", "0", "1", "01", "10", "001"]:
            bound = len(text) + 2
            assert cascade.accepts(list(text), bound) == run_machine(
                contains_one(), list(text), bound
            )


class TestTwoLevels:
    @pytest.mark.parametrize("text", ["", "0", "1", "00", "01", "10", "11"])
    def test_relay_yes(self, text):
        cascade = contains_one_cascade()
        bound = suggested_time_bound(2, len(text))
        assert cascade.accepts(list(text), bound) == ("1" in text)

    @pytest.mark.parametrize("text", ["", "0", "1", "00", "01", "10", "11"])
    def test_relay_no_uses_complement(self, text):
        cascade = no_ones_cascade()
        bound = suggested_time_bound(2, len(text))
        assert cascade.accepts(list(text), bound) == ("1" not in text)

    def test_time_bound_too_small(self):
        cascade = contains_one_cascade()
        # Copying alone exhausts a tight counter before the query.
        assert not cascade.accepts(list("1"), 2)

    def test_input_must_fit(self):
        with pytest.raises(MachineError):
            contains_one_cascade().accepts(["0"] * 10, 4)


class TestThreeLevels:
    @pytest.mark.parametrize("text", ["", "0", "1", "01", "10"])
    def test_double_relay_complement(self, text):
        from repro.machines.library import suggested_time_bound, three_level_cascade

        cascade = three_level_cascade()
        bound = suggested_time_bound(3, len(text))
        assert cascade.accepts(list(text), bound) == ("1" not in text)

    @pytest.mark.parametrize("text", ["", "0", "1"])
    def test_double_relay_straight(self, text):
        from repro.machines.library import suggested_time_bound, three_level_cascade

        cascade = three_level_cascade(accept_on_yes=True)
        bound = suggested_time_bound(3, len(text))
        assert cascade.accepts(list(text), bound) == ("1" in text)

    def test_k_property(self):
        from repro.machines.library import three_level_cascade

        assert three_level_cascade().k == 3


class TestOracleSemantics:
    def _double_query_machine(self) -> Machine:
        """Writes a 1, queries, and on YES queries again then accepts
        only if the second answer is also YES — exercising persistence
        of the invoker's oracle tape across calls."""
        return Machine(
            name="twice",
            steps=(
                Step("w", BLANK, "ask", "x", 0, oracle_write="1", oracle_move=0),
            ),
            initial="w",
            accepting=frozenset({"acc"}),
            query_state="ask",
            yes_state="acc",
            no_state="rej",
        )

    def test_oracle_reads_what_invoker_wrote(self):
        cascade = Cascade((self._double_query_machine(), contains_one()))
        # The invoker writes "1" onto the oracle tape; contains_one says yes.
        assert cascade.accepts([], 6)

    def test_oracle_own_tape_starts_blank(self):
        # The invoker writes only blanks, so the oracle (contains_one)
        # sees a blank tape and answers NO; the no-state is accepting.
        writer = Machine(
            name="silent",
            steps=(
                Step("w", BLANK, "ask", "x", 0, oracle_write=BLANK, oracle_move=0),
            ),
            initial="w",
            accepting=frozenset({"acc"}),
            query_state="ask",
            yes_state="rej",
            no_state="acc",
        )
        cascade = Cascade((writer, contains_one()))
        assert cascade.accepts([], 6)

    def test_memoization_consistency(self):
        # Repeated accepts() calls with fresh memo are deterministic.
        cascade = no_ones_cascade()
        first = cascade.accepts(list("01"), suggested_time_bound(2, 2))
        second = cascade.accepts(list("01"), suggested_time_bound(2, 2))
        assert first == second == False
