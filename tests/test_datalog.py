"""Unit tests for the positive-Datalog substrate (naive & semi-naive)."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.datalog import (
    FixpointStats,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)
from repro.bench.workloads import chain_edges_db, transitive_closure_rules

EVALUATORS = [naive_least_fixpoint, seminaive_least_fixpoint]


@pytest.fixture
def tc_rules():
    return transitive_closure_rules()


@pytest.mark.parametrize("evaluate", EVALUATORS)
class TestBothEvaluators:
    def test_transitive_closure(self, evaluate, tc_rules):
        db = chain_edges_db(5)
        model = evaluate(tc_rules.rules, db)
        # 5 nodes in a path: C(5, 2) = 10 path facts.
        assert model.count("path") == 10

    def test_facts_preserved(self, evaluate, tc_rules):
        db = chain_edges_db(3)
        model = evaluate(tc_rules.rules, db)
        assert atom("edge", "v0", "v1") in model

    def test_no_rules(self, evaluate, tc_rules):
        model = evaluate([], chain_edges_db(3))
        assert model.count("path") == 0

    def test_bodiless_rule_fires(self, evaluate, tc_rules):
        rb = parse_program("seed(a). grown(X) :- seed(X).")
        model = evaluate(rb.rules, Database())
        assert atom("grown", "a") in model

    def test_unsafe_head_variable_grounded_over_domain(self, evaluate, tc_rules):
        # q(X) :- go. derives q for every domain constant once go holds.
        rb = parse_program("q(X) :- go. go.")
        db = Database.from_relations({"d": ["a", "b"]})
        model = evaluate(rb.rules, db)
        assert model.count("q") == 2

    def test_rejects_negation(self, evaluate, tc_rules):
        rb = parse_program("p(X) :- q(X), ~r(X).")
        with pytest.raises(EvaluationError):
            evaluate(rb.rules, Database())

    def test_rejects_hypotheticals(self, evaluate, tc_rules):
        rb = parse_program("p(X) :- q(X)[add: r(X)].")
        with pytest.raises(EvaluationError):
            evaluate(rb.rules, Database())

    def test_cycle(self, evaluate, tc_rules):
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        db = Database.from_relations({"edge": edges})
        model = evaluate(tc_rules.rules, db)
        assert model.count("path") == 9  # complete closure on a 3-cycle

    def test_join_with_repeated_variables(self, evaluate, tc_rules):
        rb = parse_program("loop(X) :- edge(X, X).")
        db = Database.from_relations({"edge": [("a", "a"), ("a", "b")]})
        model = evaluate(rb.rules, db)
        assert model.count("loop") == 1


class TestAgreement:
    def test_naive_equals_seminaive_on_random_graphs(self):
        from repro.bench.workloads import random_graph

        rules = transitive_closure_rules().rules
        for seed in range(5):
            nodes, edges = random_graph(6, 0.3, seed)
            db = Database.from_relations({"edge": edges or [("x", "y")]})
            naive = naive_least_fixpoint(rules, db)
            semi = seminaive_least_fixpoint(rules, db)
            assert naive.to_frozenset() == semi.to_frozenset()


class TestStats:
    def test_seminaive_fires_fewer_rules_on_chains(self):
        rules = transitive_closure_rules().rules
        db = chain_edges_db(30)
        naive_stats, semi_stats = FixpointStats(), FixpointStats()
        naive_least_fixpoint(rules, db, stats=naive_stats)
        seminaive_least_fixpoint(rules, db, stats=semi_stats)
        assert semi_stats.firings < naive_stats.firings
        assert naive_stats.derived == semi_stats.derived

    def test_round_counting(self):
        rules = transitive_closure_rules().rules
        stats = FixpointStats()
        naive_least_fixpoint(rules, chain_edges_db(4), stats=stats)
        assert stats.rounds >= 2
