"""Unit tests for repro.core.terms."""

import pytest

from repro.core.terms import (
    Atom,
    Constant,
    Variable,
    atom,
    fresh_variable,
    term,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Who")) == "Who"


class TestConstant:
    def test_string_payload(self):
        assert Constant("tony").value == "tony"

    def test_int_payload(self):
        assert Constant(3).value == 3

    def test_int_and_string_distinct(self):
        assert Constant(3) != Constant("3")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2


class TestTermCoercion:
    def test_uppercase_is_variable(self):
        assert term("X") == Variable("X")

    def test_underscore_is_variable(self):
        assert term("_gap") == Variable("_gap")

    def test_lowercase_is_constant(self):
        assert term("tony") == Constant("tony")

    def test_int_is_constant(self):
        assert term(7) == Constant(7)

    def test_terms_pass_through(self):
        original = Variable("X")
        assert term(original) is original


class TestAtom:
    def test_arity(self):
        assert atom("take", "S", "cs452").arity == 2

    def test_zero_ary(self):
        even = atom("even")
        assert even.arity == 0
        assert even.is_ground
        assert str(even) == "even"

    def test_is_ground(self):
        assert atom("take", "tony", "cs452").is_ground
        assert not atom("take", "S", "cs452").is_ground

    def test_variables_in_order_with_repeats(self):
        names = [v.name for v in atom("p", "X", "a", "Y", "X").variables()]
        assert names == ["X", "Y", "X"]

    def test_constants(self):
        values = [c.value for c in atom("p", "X", "a", 3).constants()]
        assert values == ["a", 3]

    def test_substitute_partial(self):
        pattern = atom("take", "S", "C")
        bound = pattern.substitute({Variable("S"): Constant("tony")})
        assert bound == atom("take", "tony", "C")

    def test_substitute_noop_returns_self(self):
        ground = atom("take", "tony", "cs452")
        assert ground.substitute({Variable("S"): Constant("x")}) is ground

    def test_values_of_ground_atom(self):
        assert atom("take", "tony", 3).values() == ("tony", 3)

    def test_values_raises_on_variables(self):
        with pytest.raises(ValueError):
            atom("take", "S").values()

    def test_str_roundtrippable_shape(self):
        assert str(atom("take", "S", "cs452")) == "take(S, cs452)"

    def test_hashable_as_dict_key(self):
        table = {atom("p", "a"): 1}
        assert table[atom("p", "a")] == 1


class TestFreshVariable:
    def test_distinct_each_call(self):
        assert fresh_variable() != fresh_variable()

    def test_cannot_collide_with_parsed_names(self):
        assert "#" in fresh_variable("X").name
