"""Unit tests for the stratified Datalog¬ substrate."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError, StratificationError
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.stratified import perfect_model, stratified_holds


class TestPerfectModel:
    def test_plain_datalog(self):
        rb = parse_program("p(X) :- q(X). ")
        model = perfect_model(rb, Database.from_relations({"q": ["a"]}))
        assert atom("p", "a") in model

    def test_negation_across_strata(self):
        rb = parse_program(
            """
            unreachable(X) :- node(X), ~reach(X).
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            """
        )
        db = Database.from_relations(
            {
                "node": ["a", "b", "c"],
                "start": ["a"],
                "edge": [("a", "b")],
            }
        )
        model = perfect_model(rb, db)
        assert atom("unreachable", "c") in model
        assert atom("unreachable", "b") not in model

    def test_local_variable_under_negation_is_not_exists(self):
        # empty :- ~item(X).  holds iff item has NO tuples at all.
        rb = parse_program("empty :- ~item(X).")
        assert stratified_holds(rb, Database.from_relations({"d": ["a"]}), atom("empty"))
        assert not stratified_holds(
            rb, Database.from_relations({"item": ["a"], "d": ["b"]}), atom("empty")
        )

    def test_negation_with_bound_variable(self):
        rb = parse_program("solo(X) :- node(X), ~edge(X, Y).")
        db = Database.from_relations(
            {"node": ["a", "b"], "edge": [("a", "b")]}
        )
        model = perfect_model(rb, db)
        # a has an outgoing edge, b has none.
        assert atom("solo", "b") in model
        assert atom("solo", "a") not in model

    def test_win_move_game_stratified_version(self):
        # "Lose" positions with the move graph made acyclic: a -> b -> c.
        rb = parse_program(
            """
            win(X) :- move(X, Y), ~win2(Y).
            win2(X) :- move2(X, Y), ~win3(Y).
            win3(X) :- never(X).
            """
        )
        db = Database.from_relations(
            {"move": [("a", "b")], "move2": [("b", "c")]}
        )
        model = perfect_model(rb, db)
        # b -> c and c is not win3, so win2(b); hence not win(a).
        assert atom("win2", "b") in model
        assert atom("win", "a") not in model

    def test_double_negation(self):
        rb = parse_program(
            """
            a(X) :- d(X), ~b(X).
            b(X) :- d(X), ~c(X).
            """
        )
        db = Database.from_relations({"d": ["x"], "c": ["x"]})
        model = perfect_model(rb, db)
        assert atom("b", "x") not in model
        assert atom("a", "x") in model

    def test_recursive_negation_rejected(self):
        rb = parse_program("a :- ~b. b :- ~a.")
        with pytest.raises(StratificationError):
            perfect_model(rb, Database())

    def test_hypothetical_rejected(self):
        rb = parse_program("p :- q[add: r].")
        with pytest.raises(EvaluationError):
            perfect_model(rb, Database())

    def test_model_contains_database(self):
        rb = parse_program("p(X) :- q(X).")
        db = Database.from_relations({"q": ["a"], "unrelated": ["z"]})
        model = perfect_model(rb, db)
        assert atom("unrelated", "z") in model

    def test_recursion_within_stratum(self):
        rb = parse_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            """
        )
        db = Database.from_relations(
            {"start": ["a"], "edge": [("a", "b"), ("b", "c"), ("c", "d")]}
        )
        model = perfect_model(rb, db)
        assert model.count("reach") == 4

    def test_stratified_holds_pattern(self):
        rb = parse_program("p(X) :- q(X).")
        db = Database.from_relations({"q": ["a"]})
        assert stratified_holds(rb, db, atom("p", "X"))
        assert not stratified_holds(rb, db, atom("missing", "X"))
