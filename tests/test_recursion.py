"""Unit tests for linearity (Definition 8)."""

from repro.analysis.recursion import (
    is_linear_rule,
    is_linear_ruleset,
    is_recursive_rule,
    mutual_recursion_classes,
    nonlinear_rules,
    recursive_premise_count,
)
from repro.core.parser import parse_program


class TestDefinition8:
    def test_nonrecursive_rule_is_linear(self):
        rb = parse_program("p(X) :- q(X), r(X).")
        classes = mutual_recursion_classes(rb)
        rule = rb.rules[0]
        assert not is_recursive_rule(rule, classes)
        assert is_linear_rule(rule, classes)

    def test_single_recursion_is_linear(self):
        rb = parse_program("path(X, Y) :- edge(X, Z), path(Z, Y).")
        classes = mutual_recursion_classes(rb)
        assert recursive_premise_count(rb.rules[0], classes) == 1
        assert is_linear_rule(rb.rules[0], classes)

    def test_double_recursion_is_not_linear(self):
        rb = parse_program("path(X, Y) :- path(X, Z), path(Z, Y).")
        classes = mutual_recursion_classes(rb)
        assert recursive_premise_count(rb.rules[0], classes) == 2
        assert not is_linear_rule(rb.rules[0], classes)

    def test_rule_2_shape_not_linear(self):
        # The paper's rule (2): multiple recursive hypothetical premises.
        rb = parse_program("a :- b, a[add: c1], a[add: c2].")
        classes = mutual_recursion_classes(rb)
        assert recursive_premise_count(rb.rules[0], classes) == 2
        assert nonlinear_rules(rb) == [rb.rules[0]]

    def test_mutual_recursion_counts(self):
        # EVEN/ODD of Example 6: mutually recursive but linear.
        rb = parse_program(
            """
            even :- select(X), odd[add: b(X)].
            odd :- select(X), even[add: b(X)].
            even :- ~select(X).
            select(X) :- a(X), ~b(X).
            """
        )
        classes = mutual_recursion_classes(rb)
        assert classes["even"] == {"even", "odd"}
        assert is_linear_ruleset(rb.rules, classes)

    def test_indirect_nonlinearity_through_auxiliaries(self):
        # The paper's n+1-rule example: each rule looks linear but the
        # set implies rule (2).  With n = 2:
        rb = parse_program(
            """
            a :- b, d1, d2.
            d1 :- a[add: c1].
            d2 :- a[add: c2].
            """
        )
        classes = mutual_recursion_classes(rb)
        # a, d1, d2 are all mutually recursive...
        assert classes["a"] == {"a", "d1", "d2"}
        # ...so the first rule has two recursive premises.
        assert recursive_premise_count(rb.rules[0], classes) == 2
        assert not is_linear_ruleset(rb.rules, classes)

    def test_negated_premise_counts_as_occurrence(self):
        rb = parse_program("p :- q, ~p.")
        classes = mutual_recursion_classes(rb)
        assert recursive_premise_count(rb.rules[0], classes) == 1

    def test_addition_does_not_count(self):
        # p recursive via the goal only, not via the added atom.
        rb = parse_program("p :- q[add: p].")
        classes = mutual_recursion_classes(rb)
        assert classes["p"] == {"p"}
        assert not is_recursive_rule(rb.rules[0], classes)
