"""Tests for the concrete Appendix A (Theorem 3) envelope."""

import pytest

from repro.analysis.bounds import proof_sequence_bound
from repro.analysis.stratify import linear_stratification
from repro.core.database import Database
from repro.engine.prove import LinearStratifiedProver
from repro.library import (
    addition_chain_rulebase,
    graph_db,
    hamiltonian_rulebase,
    order_db,
    order_iteration_rulebase,
    parity_db,
    parity_rulebase,
)


def measured_goals(rulebase, db, query):
    stratification = linear_stratification(rulebase)
    prover = LinearStratifiedProver(rulebase, stratification)
    prover.ask(db, query)
    bound = proof_sequence_bound(
        stratification, stratification.k, len(prover.domain(db))
    )
    return prover.stats.sigma_goals, bound


class TestIngredients:
    def test_parity_ingredients(self):
        stratification = linear_stratification(parity_rulebase())
        bound = proof_sequence_bound(stratification, 1, 5)
        assert bound.max_arity == 1  # unary a/b/select
        assert bound.recursion_classes == 1  # {even, odd}
        assert bound.longest_body == 2

    def test_propositional_chain(self):
        stratification = linear_stratification(addition_chain_rulebase(8))
        bound = proof_sequence_bound(stratification, 1, 0)
        assert bound.max_arity == 0
        assert bound.recursion_classes == 8  # each a_i its own class
        assert bound.value >= 8

    def test_str_rendering(self):
        stratification = linear_stratification(parity_rulebase())
        text = str(proof_sequence_bound(stratification, 1, 3))
        assert "Theorem 3" in text and "n=3" in text


class TestEnvelopeHolds:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_chains(self, n):
        goals, bound = measured_goals(addition_chain_rulebase(n), Database(), "a1")
        assert goals <= bound.value

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_order_walks(self, n):
        goals, bound = measured_goals(order_iteration_rulebase(), order_db(n), "a")
        assert goals <= bound.value

    @pytest.mark.parametrize("size", [1, 3, 5])
    def test_parity(self, size):
        db = parity_db([f"x{index}" for index in range(size)])
        goals, bound = measured_goals(parity_rulebase(), db, "even")
        assert goals <= bound.value

    @pytest.mark.parametrize(
        "edges",
        [
            [("a", "b"), ("b", "c")],
            [("a", "b"), ("a", "c")],
            [],
        ],
    )
    def test_hamiltonian(self, edges):
        db = graph_db(["a", "b", "c"], edges)
        goals, bound = measured_goals(hamiltonian_rulebase(), db, "yes")
        assert goals <= bound.value
