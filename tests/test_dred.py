"""Tests for deletion propagation (DRed) and standing queries.

The bottom-up engine evaluates ``[del: ...]`` premises first-class
(docs/INCREMENTAL.md): hypothetical recursion into a smaller database
is answered by *patching* the parent's model — over-delete, re-derive,
re-close — instead of a from-scratch fixpoint, and the same machinery
makes an external retract (a session's ``retract_facts``, the REPL's
``:retract``) re-answer in time proportional to the change.

Pinned here:

* parity of the bottom-up engine with the top-down oracle over the
  whole E14 deletion battery (Bonner's companion-paper extension);
* incremental retracts: patched models equal fresh recomputes while
  firing far fewer rules;
* the add/delete lattice cycle guard (the one completeness gap,
  reported as a clear error, never a wrong answer);
* session mutation counting (duplicate batches, retract/re-assert
  round trips);
* standing queries end to end: ``Session.watch`` diffs, the server's
  ``subscribe``/``unsubscribe`` ops with pushed event frames, and the
  REPL's ``:watch``;
* a hypothesis property: any interleaving of asserts and retracts,
  evaluated by one cache-carrying engine, agrees with a from-scratch
  rebuild at every step (and the database hash stays stable through
  ``without_facts`` cycles).
"""

import asyncio
import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.errors import EvaluationError, ValidationError
from repro.core.parser import parse_database, parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.query import Session
from repro.engine.topdown import TopDownEngine
from repro.repl import Repl
from repro.server import HypoDatalogServer, ServerConfig, SharedRulebase
from repro.server.protocol import encode_frame
from repro.server.sessions import ClientSession

# ----------------------------------------------------------------------
# The E14 battery: every deletion-semantics program from the paper's
# examples and tests/test_deletions.py, as (rules, facts, queries).
# ----------------------------------------------------------------------

E14_BATTERY = [
    (
        "q :- f. test :- q[del: f].",
        "f.",
        ["q", "test"],
    ),
    (
        "test :- q[del: f]. q :- g.",
        "g.",
        ["test", "q"],
    ),
    (
        # Deletions apply before additions: [del: f][add: f] keeps f.
        "test :- q[del: f][add: f]. q :- f.",
        "",
        ["test"],
    ),
    (
        "test :- q[del: f][add: f]. q :- f.",
        "f.",
        ["test"],
    ),
    (
        """
        alarm :- sensor_a.
        alarm :- sensor_b.
        redundant :- alarm, alarm[del: sensor_a].
        """,
        "sensor_a. sensor_b.",
        ["alarm", "redundant"],
    ),
    (
        """
        alarm :- sensor_a.
        alarm :- sensor_b.
        redundant :- alarm, alarm[del: sensor_a].
        """,
        "sensor_a.",
        ["alarm", "redundant"],
    ),
    (
        """
        isolated(X) :- node(X), reach(X)[del: edge(X, Y)].
        reach(X) :- edge(X, Z).
        """,
        "node(a). node(b). edge(a, b). edge(a, a).",
        ["isolated(a)", "isolated(b)", "isolated(S)"],
    ),
    (
        # Negation interleaved with both adds and deletes.
        """
        flip :- flop[add: m1].
        flop :- m1, done[del: m1].
        done :- ~m1.
        """,
        "",
        ["flip", "flop", "done"],
    ),
    (
        # Deletion under recursion: does the path survive the cut?
        """
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        robust(X, Y) :- path(X, Y), path(X, Y)[del: edge(X, Y)].
        """,
        "edge(a, b). edge(b, c). edge(a, c).",
        ["robust(a, c)", "robust(a, b)", "robust(S, T)", "path(S, T)"],
    ),
]


class TestBottomUpParity:
    """The bottom-up engine must agree with the top-down oracle on
    every deletion program (acceptance criterion of the DRed PR)."""

    @pytest.mark.parametrize(
        "rules, facts, queries", E14_BATTERY, ids=range(len(E14_BATTERY))
    )
    def test_ask_and_answers_parity(self, rules, facts, queries):
        rulebase = parse_program(rules)
        db = parse_database(facts)
        bottom_up = PerfectModelEngine(rulebase)
        oracle = TopDownEngine(rulebase)
        for query in queries:
            assert bottom_up.ask(db, query) == oracle.ask(db, query), query
            if "S" in query:
                assert bottom_up.answers(db, query) == oracle.answers(
                    db, query
                ), query

    @pytest.mark.parametrize(
        "rules, facts, queries", E14_BATTERY, ids=range(len(E14_BATTERY))
    )
    def test_parity_survives_the_self_check(self, rules, facts, queries):
        # cross_check re-derives every patched/seeded model from
        # scratch and fails loudly on any divergence.
        engine = PerfectModelEngine(parse_program(rules), cross_check=True)
        oracle = TopDownEngine(parse_program(rules))
        db = parse_database(facts)
        for query in queries:
            assert engine.ask(db, query) == oracle.ask(db, query), query
        assert engine.metrics.counter("model.reuse_fallbacks").value == 0


class TestDeletionSemanticsBottomUp:
    """The semantics cases from tests/test_deletions.py, re-run on the
    engine that used to reject them."""

    def test_deletion_removes_a_fact(self):
        engine = PerfectModelEngine(parse_program("q :- f. test :- q[del: f]."))
        db = Database([atom("f")])
        assert engine.ask(db, "q")
        assert not engine.ask(db, "test")

    def test_deletion_of_absent_fact_is_noop(self):
        engine = PerfectModelEngine(parse_program("test :- q[del: f]. q :- g."))
        assert engine.ask(Database([atom("g")]), "test")

    def test_deletions_apply_before_additions(self):
        engine = PerfectModelEngine(
            parse_program("test :- q[del: f][add: f]. q :- f.")
        )
        assert engine.ask(Database(), "test")
        assert engine.ask(Database([atom("f")]), "test")

    def test_counterfactual_toggle(self):
        rules = parse_program(
            """
            alarm :- sensor_a.
            alarm :- sensor_b.
            redundant :- alarm, alarm[del: sensor_a].
            """
        )
        engine = PerfectModelEngine(rules)
        both = Database([atom("sensor_a"), atom("sensor_b")])
        only_a = Database([atom("sensor_a")])
        assert engine.ask(both, "redundant")
        assert not engine.ask(only_a, "redundant")

    def test_live_parent_patching_is_counted(self):
        # [del:] recursion during evaluation patches the parent's
        # model instead of refixpointing the smaller database.
        rules = parse_program(
            """
            alarm :- sensor_a.
            alarm :- sensor_b.
            redundant :- alarm, alarm[del: sensor_a].
            """
        )
        engine = PerfectModelEngine(rules)
        db = Database([atom("sensor_a"), atom("sensor_b")])
        assert engine.ask(db, "redundant")
        assert engine.metrics.counter("dred.models_patched").value >= 1


def chain_db(chains: int, length: int) -> Database:
    facts = []
    for chain in range(chains):
        for hop in range(length - 1):
            facts.append(atom("edge", f"n{chain}_{hop}", f"n{chain}_{hop+1}"))
    return Database(facts)


PATH_RULES = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    """
)


def total_firings(engine: PerfectModelEngine) -> int:
    return (
        engine.metrics.counter("model.rule_firings").value
        + engine.metrics.counter("dred.overdelete_firings").value
    )


class TestIncrementalRetract:
    """An external retract re-answers by patching the cached model."""

    def test_patched_model_equals_fresh_recompute(self):
        db = chain_db(chains=6, length=8)
        smaller = db.without_facts(atom("edge", "n0_3", "n0_4"))
        engine = PerfectModelEngine(PATH_RULES)
        engine.model(db)
        patched = engine.model(smaller)
        assert engine.metrics.counter("dred.models_patched").value == 1
        fresh = PerfectModelEngine(PATH_RULES).model(smaller)
        assert patched == fresh

    def test_retract_fires_fewer_rules_than_refixpoint(self):
        db = chain_db(chains=6, length=8)
        smaller = db.without_facts(atom("edge", "n0_3", "n0_4"))
        engine = PerfectModelEngine(PATH_RULES)
        engine.model(db)
        before = total_firings(engine)
        engine.model(smaller)
        incremental = total_firings(engine) - before
        scratch = PerfectModelEngine(PATH_RULES)
        scratch.model(smaller)
        full = total_firings(scratch)
        assert incremental * 5 <= full, (incremental, full)

    def test_strata_are_skipped_when_untouched(self):
        rules = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            color(X) :- tint(X).
            """
        )
        db = chain_db(chains=2, length=4).with_facts(atom("tint", "red"))
        engine = PerfectModelEngine(rules)
        engine.model(db)
        engine.model(db.without_facts(atom("edge", "n0_1", "n0_2")))
        assert engine.metrics.counter("dred.strata_skipped").value >= 1

    def test_rederivation_keeps_alternatively_supported_atoms(self):
        # Two routes a->c; deleting one edge must keep path(a, c).
        db = parse_database("edge(a, b). edge(b, c). edge(a, c).")
        engine = PerfectModelEngine(PATH_RULES)
        engine.model(db)
        smaller = db.without_facts(atom("edge", "a", "c"))
        assert engine.ask(smaller, "path(a, c)")
        assert engine.metrics.counter("dred.atoms_rederived").value >= 1

    def test_cycle_guard_reports_instead_of_diverging(self):
        # p at {} needs model({f}); q at {f} needs model({}): circular
        # support across databases, which whole-model evaluation
        # cannot resolve.  The guard must raise, not loop or lie.
        rules = parse_program("p :- q[add: f]. q :- r[del: f]. r.")
        engine = PerfectModelEngine(rules)
        with pytest.raises(EvaluationError, match="cycle"):
            engine.ask(Database([atom("f")]), "p")


class TestSessionMutationCounts:
    """ClientSession assert/retract report *visible* changes."""

    def shared(self):
        return SharedRulebase(
            parse_program("grad(S) :- take(S, m1), take(S, m2)."),
            parse_database("take(ann, m1). take(ann, m2). take(ben, m1)."),
        )

    def test_duplicate_batch_retract_counts_once(self):
        session = ClientSession(self.shared())
        assert session.retract_facts(["take(ann, m1).", "take(ann, m1)."]) == 1
        assert session.retract_facts(["take(ann, m1)."]) == 0

    def test_duplicate_batch_assert_counts_once(self):
        session = ClientSession(self.shared())
        assert session.assert_facts(["take(cat, m1).", "take(cat, m1)."]) == 1
        assert session.assert_facts(["take(cat, m1)."]) == 0

    def test_retract_then_reassert_round_trip(self):
        # Re-asserting a base fact this session had retracted changes
        # what queries see, so it must count as added again.
        session = ClientSession(self.shared())
        assert session.ask("grad(ann)")
        assert session.retract_facts(["take(ann, m2)."]) == 1
        assert not session.ask("grad(ann)")
        assert session.assert_facts(["take(ann, m2)."]) == 1
        assert session.ask("grad(ann)")
        assert session.assert_facts(["take(ann, m2)."]) == 0

    def test_retract_of_invisible_fact_counts_zero(self):
        session = ClientSession(self.shared())
        assert session.retract_facts(["take(zed, m9)."]) == 0


class TestStandingQueries:
    def test_watch_reports_only_diffs(self):
        session = Session(PATH_RULES)
        query = session.watch("path(X, Y)")
        db = parse_database("edge(a, b).")
        first = query.refresh(db)
        assert first.added == frozenset({("a", "b")})
        assert not query.refresh(db)  # unchanged -> falsy
        grown = db.with_facts(atom("edge", "b", "c"))
        diff = query.refresh(grown)
        assert diff.added == frozenset({("b", "c"), ("a", "c")})
        assert diff.removed == frozenset()
        shrunk = grown.without_facts(atom("edge", "a", "b"))
        diff = query.refresh(shrunk)
        assert diff.removed == frozenset({("a", "b"), ("a", "c")})

    def test_watch_rejects_non_atom_patterns(self):
        session = Session(PATH_RULES)
        with pytest.raises(EvaluationError):
            session.watch("~path(X, Y)")

    def test_client_session_watch_cycle(self):
        shared = SharedRulebase(PATH_RULES, parse_database("edge(a, b)."))
        session = ClientSession(shared)
        wid, initial = session.watch("path(X, Y)")
        assert wid == "w1"
        assert initial == frozenset({("a", "b")})
        with pytest.raises(ValidationError):
            session.watch("path(X, Y)", name="w1")
        session.assert_facts(["edge(b, c)."])
        events = session.refresh_watches()
        assert events == [
            {
                "watch": "w1",
                "pattern": "path(X, Y)",
                "added": [["a", "c"], ["b", "c"]],
                "removed": [],
            }
        ]
        assert session.refresh_watches() == []  # no change, no event
        assert session.unwatch("w1")
        assert not session.unwatch("w1")
        assert session.watches == ()


class _Wire:
    """Minimal async JSON-lines client distinguishing responses from
    pushed event frames by the ``ok`` key (docs/SERVER.md)."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._ids = itertools.count(1)

    async def call(self, op, **params):
        frame = {"v": 1, "id": next(self._ids), "op": op}
        frame.update((k, v) for k, v in params.items() if v is not None)
        self.writer.write(encode_frame(frame))
        await self.writer.drain()
        return await self.read()

    async def read(self):
        return json.loads(await self.reader.readline())


async def _serving():
    shared = SharedRulebase(PATH_RULES, parse_database("edge(a, b)."))
    server = HypoDatalogServer(shared, ServerConfig(port=0))
    await server.start()
    return server


class TestServerSubscribe:
    def test_subscribe_pushes_events_after_mutations(self):
        async def scenario():
            server = await _serving()
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                client = _Wire(reader, writer)
                response = await client.call("subscribe", pattern="path(X, Y)")
                assert response["ok"]
                assert response["result"]["watch"] == "w1"
                assert response["result"]["rows"] == [["a", "b"]]

                response = await client.call("assert", facts="edge(b, c).")
                assert response["ok"]
                event = await client.read()
                assert event["event"] == "watch"
                assert "ok" not in event
                assert event["watch"] == "w1"
                assert event["session"] == "default"
                assert event["added"] == [["a", "c"], ["b", "c"]]
                assert event["removed"] == []

                response = await client.call("retract", facts="edge(b, c).")
                assert response["ok"]
                event = await client.read()
                assert event["removed"] == [["a", "c"], ["b", "c"]]

                # A mutation that changes nothing pushes nothing: the
                # next frame on the wire is the pong, not an event.
                response = await client.call("retract", facts="edge(x, y).")
                assert response["ok"] and response["result"]["removed"] == 0
                response = await client.call("ping")
                assert response["ok"] and response["result"]["pong"]

                assert server.metrics.counter("server.watch.events").value == 2
            finally:
                await server.shutdown(drain_timeout=5.0)

        asyncio.run(scenario())

    def test_unsubscribe_stops_events_and_unknown_watch_errors(self):
        async def scenario():
            server = await _serving()
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                client = _Wire(reader, writer)
                response = await client.call(
                    "subscribe", pattern="path(X, Y)", watch="mine"
                )
                assert response["ok"] and response["result"]["watch"] == "mine"
                response = await client.call(
                    "subscribe", pattern="path(X, Y)", watch="mine"
                )
                assert not response["ok"]
                assert response["error"]["code"] == "invalid-request"

                response = await client.call("unsubscribe", watch="mine")
                assert response["ok"] and response["result"]["unwatched"] == "mine"
                response = await client.call("unsubscribe", watch="mine")
                assert not response["ok"]
                assert response["error"]["code"] == "unknown-watch"

                response = await client.call("assert", facts="edge(b, c).")
                assert response["ok"]
                response = await client.call("ping")  # no event in between
                assert response["ok"] and response["result"]["pong"]
            finally:
                await server.shutdown(drain_timeout=5.0)

        asyncio.run(scenario())

    def test_subscribe_parse_error_is_stable_code(self):
        async def scenario():
            server = await _serving()
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                client = _Wire(reader, writer)
                response = await client.call("subscribe", pattern="~path(X)")
                assert not response["ok"]
                assert response["error"]["code"] == "evaluation"
                response = await client.call("subscribe")
                assert not response["ok"]
                assert response["error"]["code"] == "invalid-request"
            finally:
                await server.shutdown(drain_timeout=5.0)

        asyncio.run(scenario())


class TestReplWatch:
    def test_local_watch_retract_cycle(self):
        repl = Repl()
        repl.feed("path(X, Y) :- edge(X, Y).")
        repl.feed("path(X, Y) :- edge(X, Z), path(Z, Y).")
        repl.feed("edge(a, b).")
        out = repl.feed(":watch path(X, Y)")
        assert out == "watch w1 (path(X, Y)): 1 answer(s)"
        out = repl.feed("edge(b, c).")
        assert "+ a, c" in out and "+ b, c" in out
        out = repl.feed(":retract edge(b, c)")
        assert out.startswith("retracted fact edge(b, c)")
        assert "- a, c" in out and "- b, c" in out
        assert repl.feed(":unwatch w1") == "unwatched w1"
        assert repl.feed(":unwatch w1").startswith("error: no watch")

    def test_watch_survives_rule_changes(self):
        repl = Repl()
        repl.feed("edge(a, b).")
        repl.feed(":watch path(X, Y)")
        out = repl.feed("path(X, Y) :- edge(X, Y).")
        assert "+ a, b" in out

    def test_retract_requires_ground_fact(self):
        repl = Repl()
        assert repl.feed(":retract") == "error: usage: :retract FACT"
        assert "ground" in repl.feed(":retract edge(X, Y)")


# ----------------------------------------------------------------------
# Property: interleaved mutations vs from-scratch rebuild
# ----------------------------------------------------------------------

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MUTATION_RULES = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    robust(X, Y) :- path(X, Y), path(X, Y)[del: edge(X, Y)].
    """
)

_POOL = [
    atom("edge", a, b) for a in ("a", "b", "c") for b in ("a", "b", "c")
]

mutation_scripts = st.lists(
    st.tuples(st.sampled_from(["assert", "retract"]), st.sampled_from(_POOL)),
    min_size=1,
    max_size=8,
)


class TestMutationProperties:
    @SETTINGS
    @given(mutation_scripts)
    def test_interleaved_mutations_match_rebuild(self, script):
        """One engine carried across every intermediate database (so
        its lattice-reuse and DRed paths do the work) agrees at each
        step with a fresh engine on a from-scratch database, and the
        incremental hash survives without_facts cycles."""
        engine = PerfectModelEngine(MUTATION_RULES)
        db = Database()
        live = set()
        for op, fact in script:
            if op == "assert":
                db = db.with_facts(fact)
                live.add(fact)
            else:
                db = db.without_facts(fact)
                live.discard(fact)
            rebuilt = Database(live)
            assert db == rebuilt
            assert hash(db) == hash(rebuilt)
        assert engine.model(db) == PerfectModelEngine(MUTATION_RULES).model(
            Database(live)
        )

    @SETTINGS
    @given(mutation_scripts)
    def test_session_overlay_matches_rebuild(self, script):
        """ClientSession's overlay view equals the set-theoretic
        result of replaying the script over the base."""
        base = parse_database("edge(a, b).")
        shared = SharedRulebase(PATH_RULES, base)
        session = ClientSession(shared)
        live = set(base.facts)
        for op, fact in script:
            if op == "assert":
                session.assert_facts([str(fact)])
                live.add(fact)
            else:
                session.retract_facts([str(fact)])
                live.discard(fact)
        assert session.db.facts == frozenset(live)
        assert session.answers("path(X, Y)") == Session(PATH_RULES).answers(
            Database(live), "path(X, Y)"
        )
