"""Cost-aware join planning: estimates, ordering, engine integration."""

import pytest

from repro.analysis.planner import (
    cost_aware_positive_order,
    estimate_matches,
    greedy_positive_order,
    idb_aware_sizes,
    join_mode,
)
from repro.core.ast import Positive
from repro.core.database import Database
from repro.core.parser import parse_program, parse_rule
from repro.core.terms import Variable, atom
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.engine.stratified import perfect_model
from repro.engine.topdown import TopDownEngine


class TestJoinMode:
    def test_true_means_cost(self):
        assert join_mode(True) == "cost"

    def test_false_and_none_mean_textual(self):
        assert join_mode(False) == "textual"
        assert join_mode(None) == "textual"

    def test_named_modes_pass_through(self):
        assert join_mode("greedy") == "greedy"
        assert join_mode("cost") == "cost"
        assert join_mode("textual") == "textual"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            join_mode("fastest")


class TestEstimateMatches:
    def test_unbound_premise_costs_full_relation(self):
        premise = Positive(atom("edge", "X", "Y"))
        assert estimate_matches(premise, [], {"edge": 100}, 10) == 100.0

    def test_each_bound_position_divides_by_domain(self):
        premise = Positive(atom("edge", "X", "Y"))
        x = Variable("X")
        assert estimate_matches(premise, [x], {"edge": 100}, 10) == 10.0

    def test_constants_count_as_bound(self):
        premise = Positive(atom("take", "S", "cs452"))
        assert estimate_matches(premise, [], {"take": 50}, 10) == 5.0

    def test_repeated_variable_counts_as_bound(self):
        premise = Positive(atom("edge", "X", "X"))
        assert estimate_matches(premise, [], {"edge": 100}, 10) == 10.0

    def test_missing_relation_is_free(self):
        premise = Positive(atom("ghost", "X"))
        assert estimate_matches(premise, [], {}, 10) == 0.0


class TestCostOrder:
    def test_small_relation_beats_large_on_tied_bound_counts(self):
        # Greedy (most-bound-first) ties these; cost ordering must put
        # the 2-row relation first.
        big = Positive(atom("big", "X"))
        small = Positive(atom("small", "X"))
        sizes = {"big": 10_000, "small": 2}
        ordered = cost_aware_positive_order([big, small], [], sizes, 100)
        assert ordered == [small, big]
        greedy = greedy_positive_order([big, small], [])
        assert greedy == [big, small]  # textual tie-break: suboptimal

    def test_bound_premise_preferred(self):
        x = Variable("X")
        anchored = Positive(atom("link", "X", "Y"))
        free = Positive(atom("link", "Z", "W"))
        sizes = {"link": 100}
        ordered = cost_aware_positive_order([free, anchored], [x], sizes, 10)
        assert ordered[0] is anchored

    def test_order_is_complete_and_stable(self):
        premises = [Positive(atom("p", "X")), Positive(atom("p", "Y"))]
        ordered = cost_aware_positive_order(premises, [], {"p": 5}, 10)
        assert ordered == premises  # equal cost: textual order kept

    def test_idb_aware_sizes_penalize_defined_predicates(self):
        rb = parse_program("derived(X) :- stored(X).")
        db = Database.from_relations({"stored": ["a", "b"], "derived": []})
        sizes = idb_aware_sizes(rb, db.count, 5)
        assert sizes("stored") == 2.0
        assert sizes("derived") == 5.0  # 0 stored + 5^1 derived estimate
        assert sizes("absent") == 0.0


RULES = """
hit(X) :- wide(Y), wide(Z), anchor(X), link(X, Y), link(X, Z).
"""


def _bad_order_db(n=12):
    return Database.from_relations(
        {
            "wide": [f"w{i}" for i in range(n)],
            "anchor": ["a0"],
            "link": [("a0", f"w{i}") for i in range(n)],
        }
    )


class TestEnginesAgreeAcrossModes:
    """Join planning must be invisible in the answers."""

    @pytest.mark.parametrize("mode", [True, "cost", "greedy", False])
    def test_model_engine(self, mode):
        rb = parse_program(RULES)
        engine = PerfectModelEngine(rb, optimize_joins=mode)
        assert engine.answers(_bad_order_db(), "hit(X)") == {("a0",)}

    @pytest.mark.parametrize("mode", ["cost", "greedy", False])
    def test_topdown_engine(self, mode):
        rb = parse_program(RULES)
        engine = TopDownEngine(rb, optimize_joins=mode)
        assert engine.answers(_bad_order_db(6), "hit(X)") == {("a0",)}

    @pytest.mark.parametrize("mode", ["cost", "greedy", False])
    def test_prove_engine(self, mode):
        rb = parse_program(
            "grad(S) :- take(S, C1), take(S, C2), csmajor(S)."
        )
        db = Database.from_relations(
            {
                "take": [("tony", "cs100"), ("tony", "cs200"), ("sue", "cs100")],
                "csmajor": ["tony"],
            }
        )
        prover = LinearStratifiedProver(rb, optimize_joins=mode)
        assert prover.answers(db, "grad(S)") == {("tony",)}

    @pytest.mark.parametrize("mode", ["cost", "greedy", False])
    def test_stratified_substrate(self, mode):
        rb = parse_program(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n"
            "blocked(X) :- node(X), ~reach(a, X).\n"
        )
        db = Database.from_relations(
            {
                "edge": [("a", "b"), ("b", "c")],
                "node": ["a", "b", "c", "d"],
            }
        )
        model = perfect_model(rb, db, optimize_joins=mode)
        assert model.has_match(atom("blocked", "d"))
        assert not model.has_match(atom("blocked", "c"))

    def test_cost_mode_prunes_work_on_bad_order(self):
        rb = parse_program(RULES)
        cost = PerfectModelEngine(rb, optimize_joins="cost")
        textual = PerfectModelEngine(rb, optimize_joins=False)
        db = _bad_order_db()
        cost.model(db)
        textual.model(db)
        # Same answers, identical derivations — the stats only count
        # rounds and atoms, so equality here is a sanity check that
        # the planner changed nothing semantic.
        assert cost.answers(db, "hit(X)") == textual.answers(db, "hit(X)")
