"""Unit tests for Theorem 1 complexity classification."""

from repro.analysis.classify import classify
from repro.core.parser import parse_program
from repro.library import (
    degree_rulebase,
    example9_rulebase,
    example10_rulebase,
    hamiltonian_complement_rulebase,
    hamiltonian_rulebase,
)


class TestClassify:
    def test_pure_horn_is_p(self):
        report = classify(parse_program("p(X) :- q(X)."))
        assert report.class_name == "P"
        assert report.well_defined

    def test_stratified_horn_is_p(self):
        report = classify(parse_program("p(X) :- q(X), ~r(X)."))
        assert report.class_name == "P"
        assert "stratified negation" in report.notes[0]

    def test_nonlinear_horn_still_p(self):
        # Linearity does not affect Horn data-complexity (introduction).
        report = classify(
            parse_program("t(X, Y) :- t(X, Z), t(Z, Y). t(X, Y) :- e(X, Y).")
        )
        assert report.class_name == "P"

    def test_one_stratum_is_np(self):
        report = classify(hamiltonian_rulebase())
        assert report.class_name == "NP"
        assert report.strata == 1

    def test_complement_rule_adds_a_stratum(self):
        # Example 8: a single non-recursive negation on top of Example 7.
        report = classify(hamiltonian_complement_rulebase())
        assert report.class_name == "Sigma_2^P"
        assert report.strata == 2

    def test_example9_three_strata(self):
        report = classify(example9_rulebase())
        assert report.class_name == "Sigma_3^P"
        assert report.strata == 3

    def test_example10_is_pspace(self):
        report = classify(example10_rulebase())
        assert report.class_name == "PSPACE"
        assert not report.linearly_stratified
        assert report.well_defined

    def test_degree_rulebase_is_pspace(self):
        # Example 3: grad/within1 mutual recursion is non-linear.
        assert classify(degree_rulebase()).class_name == "PSPACE"

    def test_recursion_through_negation_undefined(self):
        report = classify(parse_program("a :- ~b. b :- ~a."))
        assert report.class_name == "undefined"
        assert not report.well_defined

    def test_str_rendering(self):
        text = str(classify(example9_rulebase()))
        assert "Sigma_3^P" in text and "strata: 3" in text
