"""Unit tests for the textual language parser."""

import pytest

from repro.core.ast import Hypothetical, Negated, Positive
from repro.core.errors import ParseError
from repro.core.parser import (
    parse_atom,
    parse_database,
    parse_premise,
    parse_program,
    parse_rule,
)
from repro.core.terms import Constant, Variable, atom


class TestAtoms:
    def test_simple(self):
        assert parse_atom("take(tony, cs452)") == atom("take", "tony", "cs452")

    def test_zero_ary(self):
        assert parse_atom("even") == atom("even")

    def test_variables_and_constants(self):
        parsed = parse_atom("take(S, cs452)")
        assert parsed.args == (Variable("S"), Constant("cs452"))

    def test_integers(self):
        parsed = parse_atom("next(0, 1)")
        assert parsed.args == (Constant(0), Constant(1))

    def test_negative_integers(self):
        assert parse_atom("val(-3)").args == (Constant(-3),)

    def test_quoted_constants(self):
        parsed = parse_atom("name('Tony B', x)")
        assert parsed.args[0] == Constant("Tony B")

    def test_underscore_variable(self):
        assert parse_atom("p(_x)").args == (Variable("_x"),)

    def test_trailing_dot_allowed(self):
        assert parse_atom("p(a).") == atom("p", "a")

    def test_empty_argument_list_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p()")


class TestPremises:
    def test_positive(self):
        assert parse_premise("grad(tony)") == Positive(atom("grad", "tony"))

    def test_negated_tilde(self):
        assert parse_premise("~b(X)") == Negated(atom("b", "X"))

    def test_negated_not_keyword(self):
        assert parse_premise("not b(X)") == Negated(atom("b", "X"))

    def test_hypothetical_single(self):
        parsed = parse_premise("grad(tony)[add: take(tony, cs452)]")
        assert parsed == Hypothetical(
            atom("grad", "tony"), (atom("take", "tony", "cs452"),)
        )

    def test_hypothetical_multi(self):
        parsed = parse_premise("a[add: b, c(X)]")
        assert parsed.additions == (atom("b"), atom("c", "X"))

    def test_negated_hypothetical_rejected(self):
        with pytest.raises(ParseError):
            parse_premise("~a[add: b]")


class TestRules:
    def test_fact(self):
        parsed = parse_rule("take(tony, cs250).")
        assert parsed.is_fact

    def test_rule(self):
        parsed = parse_rule("grad(S) :- take(S, his101), take(S, eng201).")
        assert parsed.head == atom("grad", "S")
        assert len(parsed.body) == 2

    def test_mixed_body(self):
        parsed = parse_rule("p(X) :- q(X), ~r(X), s(X)[add: t(X)].")
        kinds = [type(premise).__name__ for premise in parsed.body]
        assert kinds == ["Positive", "Negated", "Hypothetical"]

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")


class TestPrograms:
    def test_multiple_rules(self):
        program = parse_program(
            """
            grad(S) :- take(S, his101).
            take(tony, his101).
            """
        )
        assert len(program) == 2

    def test_comments(self):
        program = parse_program(
            """
            % percent comment
            p(a).   # hash comment
            q(b).
            """
        )
        assert len(program) == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_parse_error_carries_location(self):
        with pytest.raises(ParseError) as info:
            parse_program("p(a)\nq(b).")
        assert "line 2" in str(info.value)

    def test_unterminated_quote(self):
        with pytest.raises(ParseError):
            parse_program("p('oops).")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(a) ?- q(a).")


class TestDatabases:
    def test_facts_only(self):
        db = parse_database("take(tony, cs250). node(a).")
        assert atom("take", "tony", "cs250") in db

    def test_rules_rejected(self):
        with pytest.raises(ParseError):
            parse_database("p(X) :- q(X).")

    def test_non_ground_rejected(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError):
            parse_database("p(X).")


class TestRoundTrip:
    CASES = [
        "grad(S) :- take(S, his101), take(S, eng201).",
        "within1(S, D) :- grad(S, D)[add: take(S, C)].",
        "even :- ~select(X).",
        "a2 :- a2[add: e2], a2[add: f2].",
        "p :- q[add: r, s(X)], ~t(X).",
        "next(0, 1).",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_print_parse_identity(self, text):
        parsed = parse_rule(text)
        assert parse_rule(str(parsed)) == parsed
