"""Term interning (repro.core.interning): exact round-trips, growth.

The symbol table is the compiled substrate's foundation: every id it
hands out is baked into generated kernels and cached columnar
relations, so the properties pinned here — exact round-tripping of
arbitrary payloads, grow-only ids across hypothetical child databases,
type-distinct payloads — are what make the compiled path's answers
indistinguishable from the interpreted path's (docs/PERFORMANCE.md).
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.interning import SymbolTable
from repro.core.parser import parse_program
from repro.core.terms import Atom, Constant, atom
from repro.engine.model import PerfectModelEngine

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Payloads the parser can only produce via quoting, plus unicode and
# ints: the table must store them verbatim, never re-parse.
payloads = st.one_of(
    st.integers(-(2**40), 2**40),
    st.text(string.printable, max_size=12),
    st.text(
        st.characters(min_codepoint=0x20, max_codepoint=0x2FA1F), max_size=8
    ),
)


@given(st.lists(payloads, max_size=30))
@SETTINGS
def test_round_trip_fidelity(values):
    """intern → constant returns an equal Constant for any payload."""
    table = SymbolTable()
    for value in values:
        original = Constant(value)
        ident = table.intern(original)
        restored = table.constant(ident)
        assert restored == original
        assert restored.value == value
        assert type(restored.value) is type(value)


@given(st.lists(payloads, min_size=1, max_size=30))
@SETTINGS
def test_ids_dense_stable_and_grow_only(values):
    table = SymbolTable()
    first = [table.intern(Constant(value)) for value in values]
    assert sorted(set(first)) == list(range(len(table)))
    # Re-interning (Constant objects or raw payloads) never moves an id.
    assert [table.intern(Constant(value)) for value in values] == first
    assert [table.intern_value(value) for value in values] == first


def test_int_and_string_payloads_never_collide():
    table = SymbolTable()
    assert table.intern(Constant(1)) != table.intern(Constant("1"))
    assert table.constant(table.intern(Constant(1))).value == 1
    assert table.constant(table.intern(Constant("1"))).value == "1"


def test_predicate_namespace_is_separate():
    table = SymbolTable()
    cid = table.intern(Constant("p"))
    pid = table.intern_predicate("p")
    assert cid == 0 and pid == 0  # dense in their own spaces
    assert table.constant(cid).value == "p"
    assert table.predicate(pid) == "p"


def test_quoting_edge_cases_round_trip():
    """Constants only expressible via quoting keep their exact text."""
    for value in (
        "has space",
        "UpperCase",
        "comma, paren)",
        "π ≠ ∅",
        "tab\tand\nnewline",
        "'already quoted'",
        "",
    ):
        table = SymbolTable()
        assert table.constant(table.intern(Constant(value))).value == value


@given(st.lists(payloads, max_size=20))
@SETTINGS
def test_encode_decode_args(values):
    table = SymbolTable()
    args = tuple(Constant(value) for value in values)
    ids = table.encode_args(args)
    assert table.decode_args(ids) == args
    # encode_args interns on the fly: same ids as explicit interning.
    assert ids == tuple(table.intern(item) for item in args)


def test_make_atom_is_canonical_and_equal():
    table = SymbolTable()
    ids = table.encode_args((Constant("a"), Constant("b")))
    first = table.make_atom("edge", ids)
    assert first == atom("edge", "a", "b")
    assert first is table.make_atom("edge", ids)  # one object per head


def test_symbol_growth_across_hypothetical_children():
    """[add: ...] child databases extend the engine's one table; ids
    assigned before the hypothesis stay valid inside and after it."""
    rulebase = parse_program(
        """
        p(X) :- q(X).
        r(X) :- p(X)[add: q(X)].
        """
    )
    db = Database([atom("q", "a")])
    engine = PerfectModelEngine(rulebase, compile="on")
    assert engine.ask(db, "p(a)")
    table = engine._kernel_program.symbols
    before = {c.value: i for i, c in enumerate(table.constants)}
    # A later database introduces a new constant; the engine reuses
    # its one table, interning the newcomer without moving old ids.
    assert engine.ask(db.with_facts(atom("q", "zeta")), "r(zeta)")
    after = {c.value: i for i, c in enumerate(table.constants)}
    for value, ident in before.items():
        assert after[value] == ident
    assert "zeta" in after


def test_db_hash_stable_around_interning():
    """Interning a database's constants never perturbs the database:
    the incremental XOR hash and equality are byte-for-byte stable."""
    facts = [atom("edge", "a", "b"), atom("edge", "b", "c"), atom("n", 3)]
    db = Database(facts)
    reference = Database(facts)
    before = hash(db)
    table = SymbolTable()
    for item in db:
        table.encode_args(item.args)
        table.intern_predicate(item.predicate)
    assert hash(db) == before
    assert db == reference
    # with_facts children built after interning equal pre-interning ones.
    extra = atom("edge", "c", "d")
    assert db.with_facts(extra) == reference.with_facts(extra)
    assert hash(db.with_facts(extra)) == hash(reference.with_facts(extra))
