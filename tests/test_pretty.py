"""Unit tests for the pretty-printer."""

from repro.analysis.stratify import linear_stratification
from repro.core.parser import parse_program, parse_rule
from repro.core.pretty import (
    format_database,
    format_program,
    format_rule,
    format_stratification,
)
from repro.library import example9_rulebase, graduation_db


class TestFormatting:
    def test_format_rule_is_parseable(self):
        rule = parse_rule("p(X) :- q(X), ~r(X), s(X)[add: t(X)].")
        assert parse_rule(format_rule(rule)) == rule

    def test_format_program_plain(self):
        rb = parse_program("p(a). q(b).")
        assert format_program(rb) == "p(a).\nq(b)."

    def test_format_program_grouped(self):
        rb = parse_program("p :- q. r :- s. p :- t.")
        grouped = format_program(rb, group_by_predicate=True)
        lines = grouped.splitlines()
        assert lines[0] == "% --- p ---"
        # Both p rules appear together despite being interleaved.
        assert lines[1] == "p :- q."
        assert lines[2] == "p :- t."

    def test_format_database_sorted(self):
        text = format_database(graduation_db())
        lines = text.splitlines()
        assert lines == sorted(lines)

    def test_format_stratification_layout(self):
        stratification = linear_stratification(example9_rulebase())
        text = format_stratification(stratification)
        assert "% ===== stratum 3 =====" in text
        assert "% Sigma_1" in text and "% Delta_1" in text
        # Strata listed top-down.
        assert text.index("stratum 3") < text.index("stratum 1")

    def test_format_stratification_reparses(self):
        stratification = linear_stratification(example9_rulebase())
        reparsed = parse_program(format_stratification(stratification))
        assert set(reparsed.rules) == set(example9_rulebase().rules)
