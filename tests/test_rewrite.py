"""Unit tests for the source-to-source rewrites."""

from repro.core.ast import Hypothetical, Rule, Rulebase
from repro.core.database import Database
from repro.core.parser import parse_program
from repro.core.rewrite import negate_hypothetical, single_addition_form
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine


class TestNegateHypothetical:
    def test_produces_auxiliary_rule(self):
        premise = Hypothetical(atom("grad", "S"), (atom("take", "S", "C"),))
        negated, auxiliary = negate_hypothetical(premise)
        assert negated.atom.predicate == auxiliary.head.predicate
        assert auxiliary.body == (premise,)

    def test_variables_flow_through_head(self):
        premise = Hypothetical(atom("grad", "S"), (atom("take", "S", "C"),))
        negated, auxiliary = negate_hypothetical(premise)
        assert {v.name for v in auxiliary.head.variables()} == {"S", "C"}

    def test_workaround_semantics(self):
        # ~ (a[add: b]) via the auxiliary: holds iff a NOT provable at DB+b.
        base = parse_program("a :- b, blocker.")
        premise = Hypothetical(atom("a"), (atom("b"),))
        negated, auxiliary = negate_hypothetical(premise)
        extended = base + [auxiliary, Rule(atom("query"), (negated,))]
        engine = PerfectModelEngine(extended)
        assert engine.ask(Database(), "query")  # blocker missing
        assert not engine.ask(Database([atom("blocker")]), "query")


class TestSingleAdditionForm:
    def test_leaves_single_additions_alone(self):
        rb = parse_program("p :- q[add: r].")
        assert single_addition_form(rb).rules == rb.rules

    def test_splits_multi_additions(self):
        rb = parse_program("p :- q[add: r, s].")
        rewritten = single_addition_form(rb)
        assert len(rewritten) == 2
        for item in rewritten:
            for premise in item.body:
                if isinstance(premise, Hypothetical):
                    assert len(premise.additions) == 1

    def test_semantics_preserved(self):
        rb = parse_program(
            """
            goal :- inner[add: m1, m2, m3].
            inner :- m1, m2, m3.
            """
        )
        rewritten = single_addition_form(rb)
        original = PerfectModelEngine(rb)
        transformed = PerfectModelEngine(rewritten)
        for db in (Database(), Database([atom("m1")])):
            assert original.ask(db, "goal") == transformed.ask(db, "goal")
        assert original.ask(Database(), "goal")

    def test_semantics_preserved_with_variables(self):
        rb = parse_program(
            """
            ok(X) :- probe(X)[add: f(X), g(X)].
            probe(X) :- f(X), g(X).
            """
        )
        rewritten = single_addition_form(rb)
        db = Database.from_relations({"d": ["a", "b"]})
        original = PerfectModelEngine(rb)
        transformed = PerfectModelEngine(rewritten)
        assert original.answers(db, "ok(X)") == transformed.answers(db, "ok(X)")
