"""Unit tests for genericity checking (Section 6.1)."""

import pytest

from repro.core.database import Database
from repro.core.errors import EvaluationError
from repro.core.parser import parse_program
from repro.queries.generic import (
    RulebaseQuery,
    check_genericity,
    domain_permutations,
    rename_answer,
)


class TestRulebaseQuery:
    def test_typed_query(self):
        rb = parse_program("reach(Y) :- edge(X, Y). ")
        query = RulebaseQuery(rb, "reach")
        db = Database.from_relations({"edge": [("a", "b"), ("b", "c")]})
        assert query(db) == {("b",), ("c",)}
        assert query.arity == 1

    def test_yes_no_query(self):
        rb = parse_program("nonempty :- p(X).")
        query = RulebaseQuery(rb, "nonempty")
        assert query.boolean(Database.from_relations({"p": ["a"]}))
        assert not query.boolean(Database.from_relations({"q": ["a"]}))
        assert query(Database.from_relations({"p": ["a"]})) == {()}

    def test_unknown_output_rejected(self):
        rb = parse_program("p(X) :- q(X).")
        with pytest.raises(EvaluationError):
            RulebaseQuery(rb, "ghost")

    def test_constant_free_flag(self):
        assert RulebaseQuery(
            parse_program("p(X) :- q(X)."), "p"
        ).is_constant_free
        assert not RulebaseQuery(
            parse_program("p(X) :- q(X, special)."), "p"
        ).is_constant_free


class TestRenaming:
    def test_rename_answer(self):
        assert rename_answer({("a", "b")}, {"a": "x"}) == {("x", "b")}

    def test_domain_permutations_are_bijections(self):
        db = Database.from_relations({"p": ["a", "b", "c"]})
        for mapping in domain_permutations(db, trials=4, seed=1):
            assert sorted(mapping) == sorted(mapping.values())


class TestCheckGenericity:
    def test_constant_free_query_is_generic(self):
        rb = parse_program("reach(Y) :- edge(X, Y).")
        query = RulebaseQuery(rb, "reach")
        db = Database.from_relations({"edge": [("a", "b"), ("b", "c")]})
        assert check_genericity(query, db, trials=6)

    def test_constant_mentioning_query_is_not_generic(self):
        # 'special' is treated specially: renaming breaks consistency.
        rb = parse_program("hit(X) :- edge(X, special).")
        query = RulebaseQuery(rb, "hit")
        db = Database.from_relations(
            {"edge": [("a", "special"), ("special", "b")]}
        )
        assert not check_genericity(query, db, trials=8)

    def test_parity_rulebase_is_generic(self):
        from repro.library import parity_rulebase

        query = RulebaseQuery(parity_rulebase(), "even")
        db = Database.from_relations({"a": ["x", "y", "z"]})
        assert check_genericity(
            lambda d: {()} if query.boolean(d) else set(), db, trials=4
        )
